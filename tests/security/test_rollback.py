"""The rollback attack (Section 5.1) end to end.

The adversary powers the machine down, wipes the enclave (losing the
monotonic counter), restores an old untrusted-memory image, and brings
the service back up. Storage verification alone cannot see this — the
restored state is internally consistent — but the client's sequence-
number audit catches it: the reborn counter re-issues numbers the
client has already recorded.
"""

import pytest

from repro.core.config import VeriDBConfig
from repro.core.database import VeriDB
from repro.errors import RollbackDetected
from repro.memory.adversary import Adversary


@pytest.fixture
def db():
    database = VeriDB(VeriDBConfig(key_seed=3))
    database.sql("CREATE TABLE acct (id INTEGER PRIMARY KEY, balance INTEGER)")
    database.sql("INSERT INTO acct VALUES (1, 1000)")
    return database


def test_rollback_detected_by_client(db):
    client = db.connect()
    client.execute("SELECT balance FROM acct WHERE id = 1")  # seq 1
    adversary = Adversary(db.storage.memory)
    image = adversary.snapshot()

    client.execute("UPDATE acct SET balance = 0 WHERE id = 1")  # seq 2
    client.execute("SELECT balance FROM acct WHERE id = 1")  # seq 3

    # "power failure": enclave counter resets, old memory image restored
    db.enclave.counter._simulate_power_loss()
    adversary.rollback_memory(image)

    with pytest.raises(RollbackDetected):
        # the replayed service re-issues sequence number 1
        client.execute("SELECT balance FROM acct WHERE id = 1")


def test_rollback_invisible_to_fresh_client(db):
    """A client with no history cannot see the rollback — which is why
    the paper requires the user to persist the audit log."""
    old_client = db.connect()
    old_client.execute("SELECT * FROM acct")
    adversary = Adversary(db.storage.memory)
    image = adversary.snapshot()
    old_client.execute("UPDATE acct SET balance = 0 WHERE id = 1")

    db.enclave.counter._simulate_power_loss()
    adversary.rollback_memory(image)

    fresh_client = db.connect(name="fresh")
    result = fresh_client.execute("SELECT balance FROM acct WHERE id = 1")
    assert result.rows == ((1000,),)  # stale data accepted: no history


def test_no_false_rollback_alarms(db):
    client = db.connect()
    for _ in range(20):
        client.execute("SELECT * FROM acct")
    assert client.queries_verified == 20


def test_interleaved_clients_see_disjoint_sequence_numbers(db):
    a, b = db.connect(name="a"), db.connect(name="b")
    seen = set()
    for _ in range(5):
        seen.add(a.execute("SELECT * FROM acct").sequence_number)
        seen.add(b.execute("SELECT * FROM acct").sequence_number)
    assert len(seen) == 10  # globally unique across clients
