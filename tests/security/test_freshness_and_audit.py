"""Freshness guarantees and audit-log persistence.

Freshness (Section 5): queries execute on the latest state — a provider
serving stale data must replay old cells, which the memory checker
catches; and the client's audit state must survive its own restarts for
the rollback defence to hold across sessions.
"""

import pytest

from repro.core.client import IntervalSet
from repro.core.config import VeriDBConfig
from repro.core.database import VeriDB
from repro.errors import RollbackDetected, VerificationFailure
from repro.memory.adversary import Adversary
from repro.memory.cells import make_addr


@pytest.fixture
def db():
    database = VeriDB(VeriDBConfig(key_seed=55))
    database.sql("CREATE TABLE acct (id INTEGER PRIMARY KEY, balance INTEGER)")
    database.sql("INSERT INTO acct VALUES (1, 100), (2, 200)")
    database.verify_now()
    return database


def _addr(db, pk):
    table = db.table("acct")
    rid = table.indexes[0].search(pk)
    page = table.heap.get_page(rid.page_id)
    offset, _ = page.slot_offset_for_compaction(rid.slot)
    return make_addr(rid.page_id, offset)


# ----------------------------------------------------------------------
# freshness
# ----------------------------------------------------------------------
def test_read_your_writes_within_and_across_epochs(db):
    client = db.connect()
    client.execute("UPDATE acct SET balance = 150 WHERE id = 1")
    assert client.execute("SELECT balance FROM acct WHERE id = 1").rows == (
        (150,),
    )
    db.verify_now()
    assert client.execute("SELECT balance FROM acct WHERE id = 1").rows == (
        (150,),
    )


def test_serving_stale_value_detected(db):
    """The freshness attack: after a legit update, the provider restores
    the pre-update bytes. The stale read may succeed once; the epoch
    close exposes it."""
    adversary = Adversary(db.storage.memory)
    addr = _addr(db, 1)
    adversary.observe(addr)
    db.sql("UPDATE acct SET balance = 999 WHERE id = 1")
    adversary.replay(addr)
    stale = db.sql("SELECT balance FROM acct WHERE id = 1").rows
    assert stale == [(100,)]  # the stale value flowed...
    with pytest.raises(VerificationFailure):
        db.verify_now()  # ...and cannot survive verification


def test_stale_timestamp_alone_detected(db):
    adversary = Adversary(db.storage.memory)
    addr = _addr(db, 1)
    old_timestamp = db.storage.memory.raw_read(addr).timestamp
    db.sql("SELECT balance FROM acct WHERE id = 1")  # refreshes the stamp
    assert db.storage.memory.raw_read(addr).timestamp != old_timestamp
    adversary.corrupt_timestamp(addr, old_timestamp)  # rewind it
    with pytest.raises(VerificationFailure):
        db.verify_now()


# ----------------------------------------------------------------------
# audit persistence
# ----------------------------------------------------------------------
def test_audit_state_roundtrip(db):
    client = db.connect()
    for _ in range(5):
        client.execute("SELECT * FROM acct")
    blob = client.export_audit_state()
    restored = IntervalSet.from_bytes(blob)
    assert len(restored) == 5
    assert restored.intervals() == [(1, 5)]


def test_rollback_across_client_restart_detected(db):
    """Without persistence this attack succeeds; with it, it is caught."""
    client = db.connect()
    client.execute("SELECT * FROM acct")  # seq 1
    adversary = Adversary(db.storage.memory)
    image = adversary.snapshot()
    client.execute("UPDATE acct SET balance = 0 WHERE id = 1")  # seq 2
    saved = client.export_audit_state()

    # the provider stages the rollback while the client is offline
    db.enclave.counter._simulate_power_loss()
    adversary.rollback_memory(image)

    reborn = db.connect(name="reborn", audit_state=saved)
    with pytest.raises(RollbackDetected):
        reborn.execute("SELECT * FROM acct")  # re-issued seq 1


def test_restart_without_audit_state_misses_rollback(db):
    """The contrapositive: an amnesiac client accepts the replay."""
    client = db.connect()
    client.execute("SELECT * FROM acct")
    adversary = Adversary(db.storage.memory)
    image = adversary.snapshot()
    client.execute("UPDATE acct SET balance = 0 WHERE id = 1")

    db.enclave.counter._simulate_power_loss()
    adversary.rollback_memory(image)

    amnesiac = db.connect(name="amnesiac")
    result = amnesiac.execute("SELECT balance FROM acct WHERE id = 1")
    assert result.rows == ((100,),)  # stale state accepted


def test_malformed_audit_blob_rejected():
    with pytest.raises(ValueError):
        IntervalSet.from_bytes(b"\x03\x00\x00\x00short")
    # non-canonical (overlapping) intervals are rejected too
    bad = bytearray()
    bad += (2).to_bytes(4, "little")
    for lo, hi in ((1, 5), (4, 9)):
        bad += lo.to_bytes(8, "little")
        bad += hi.to_bytes(8, "little")
    with pytest.raises(ValueError):
        IntervalSet.from_bytes(bytes(bad))
