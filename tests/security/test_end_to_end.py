"""End-to-end security: the full Figure 2 loop under attack."""

import pytest

from repro.core.config import VeriDBConfig
from repro.core.database import VeriDB
from repro.errors import VerificationFailure
from repro.memory.adversary import Adversary
from repro.memory.cells import make_addr


@pytest.fixture
def db():
    database = VeriDB(VeriDBConfig(key_seed=4))
    database.sql(
        "CREATE TABLE orders (id INTEGER PRIMARY KEY, amount INTEGER, "
        "status TEXT, CHAIN (amount))"
    )
    for i in range(30):
        database.sql(f"INSERT INTO orders VALUES ({i}, {i * 100}, 'open')")
    database.verify_now()
    return database


def _record_addr(db, pk):
    table = db.table("orders")
    rid = table.indexes[0].search(pk)
    page = table.heap.get_page(rid.page_id)
    offset, _ = page.slot_offset_for_compaction(rid.slot)
    return make_addr(rid.page_id, offset)


def test_honest_service_full_cycle(db):
    client = db.connect()
    result = client.execute(
        "SELECT COUNT(*), SUM(amount) FROM orders WHERE amount BETWEEN 500 AND 1500"
    )
    assert result.rows == ((11, 11000),)
    db.verify_now()  # endorsement property: no alarms on honest runs


def test_tampered_amount_detected(db):
    """An adversary inflates an order amount in untrusted memory; the
    next verification pass raises the alarm."""
    adversary = Adversary(db.storage.memory)
    addr = _record_addr(db, 5)
    cell = db.storage.memory.raw_read(addr)
    adversary.corrupt(addr, cell.data[:-1] + b"\xff")
    with pytest.raises(VerificationFailure):
        db.verify_now()


def test_tampered_data_may_flow_but_is_always_caught(db):
    """Deferred verification: a tampered value can reach one query
    result, but the epoch close exposes the misbehaviour with evidence
    (Section 5.5: 'eventually detected')."""

    table = db.table("orders")
    layout, codec = table.layout, table.codec
    adversary = Adversary(db.storage.memory)
    addr = _record_addr(db, 5)
    stored = layout.from_tuple(codec.decode(db.storage.memory.raw_read(addr).data))
    stored.data_fields = ("hacked",)
    adversary.corrupt(addr, codec.encode(layout.to_tuple(stored)))

    client = db.connect()
    result = client.execute("SELECT status FROM orders WHERE id = 5")
    assert result.rows == (("hacked",),)  # the lie flows...
    with pytest.raises(VerificationFailure):
        db.verify_now()  # ...but cannot survive the epoch close


def test_continuous_verification_catches_tampering_inline():
    db = VeriDB(
        VeriDBConfig(key_seed=5, ops_per_page_scan=5)
    )
    db.sql("CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)")
    for i in range(20):
        db.sql(f"INSERT INTO t VALUES ({i}, {i})")
    adversary = Adversary(db.storage.memory)
    table = db.table("t")
    rid = table.indexes[0].search(3)
    page = table.heap.get_page(rid.page_id)
    offset, _ = page.slot_offset_for_compaction(rid.slot)
    cell = db.storage.memory.raw_read(make_addr(rid.page_id, offset))
    adversary.corrupt(make_addr(rid.page_id, offset), cell.data[:-1] + b"Z")
    # keep operating: the op-count trigger eventually closes an epoch
    with pytest.raises(VerificationFailure):
        for i in range(100, 400):
            db.sql(f"INSERT INTO t VALUES ({i}, {i})")


def test_background_verifier_reports_alarm(db):
    from tests.conftest import poll_until

    adversary = Adversary(db.storage.memory)
    addr = _record_addr(db, 7)
    cell = db.storage.memory.raw_read(addr)
    db.start_background_verification()
    adversary.corrupt(addr, cell.data[:-1] + b"!")
    # The loop dies on the alarm; wait for that observable state instead
    # of sleeping a fixed interval (flaky on loaded machines).
    assert poll_until(lambda: not db.storage.verifier.background_alive())
    with pytest.raises(VerificationFailure):
        db.stop_background_verification()


def test_stats_surface(db):
    stats = db.stats()
    assert stats["tables"] == ["orders"]
    assert stats["rsws_operations"] > 0
    assert stats["prf_calls"] > 0
    assert stats["enclave_state_bytes"] < 1024 * 1024
    assert stats["verifier"]["passes_completed"] >= 1


def test_single_ecall_per_query(db):
    client = db.connect()
    before = db.enclave.meter.snapshot()["ecalls"]
    client.execute("SELECT * FROM orders WHERE amount > 1000")
    after = db.enclave.meter.snapshot()["ecalls"]
    assert after - before == 1  # colocated engine+storage: one crossing
