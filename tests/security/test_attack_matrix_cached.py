"""The attack matrix with the trusted record cache enabled.

The cache serves point reads from inside the enclave, so the obvious
soundness worry is that a poisoned untrusted store hides behind a warm
trusted copy. These tests re-run every adversary capability against
cache-enabled databases at several cache sizes and prove detection
still lands — whether the post-attack read would hit (the verifier
flushes on every alarm and epoch close, so no stale copy survives) or
miss (the read re-runs the full Algorithm-1 protocol). A hot-hit probe
variant reads the attacked key repeatedly before detection to maximize
the chance the stale trusted copy is in play.
"""

import pytest

from repro.core.config import VeriDBConfig
from repro.errors import (
    IntegrityError,
    ProofError,
    RollbackDetected,
    VerificationFailure,
)
from repro.memory.adversary import Adversary
from repro.storage.config import StorageConfig

from tests.security.test_attack_matrix import (
    ATTACKS,
    DETECTION_ERRORS,
    build_db,
    detect,
)

#: a tiny cache (constant churn), a comfortable one, and an enormous
#: one (everything resident; stale copies would live longest)
CACHE_SIZES = (4 * 1024, 256 * 1024, 8 * 1024 * 1024)


def cached_config(cache_bytes: int, policy: str = "lru") -> VeriDBConfig:
    return VeriDBConfig(
        storage=StorageConfig(cache_bytes=cache_bytes, cache_policy=policy),
        key_seed=9,
    )


def warm_cache(db) -> None:
    """Point-read every row so the cache holds the whole table."""
    for i in range(12):
        db.sql(f"SELECT balance FROM acct WHERE id = {i}")


@pytest.mark.parametrize("attack_name", sorted(ATTACKS))
@pytest.mark.parametrize("cache_bytes", CACHE_SIZES)
def test_attack_detected_with_cache_enabled(attack_name, cache_bytes):
    db = build_db(cached_config(cache_bytes))
    client = db.connect()
    client.execute("SELECT COUNT(*) FROM acct")
    warm_cache(db)
    adversary = Adversary(db.storage.memory)
    ATTACKS[attack_name](db, adversary)
    caught = detect(db, client, attack_name)
    assert caught is not None, (
        f"attack {attack_name!r} went undetected with a "
        f"{cache_bytes}-byte cache"
    )
    assert isinstance(caught, DETECTION_ERRORS)
    # server-side alarms flush the cache: nothing stale survives.
    # (rollback_memory is detected by the *client's* sequence audit —
    # the server never raises, so no flush is expected there.)
    if attack_name != "rollback_memory":
        assert len(db.storage.cache) == 0


@pytest.mark.parametrize("policy", ["lru", "clock", "2q"])
def test_corrupt_detected_under_every_policy(policy):
    db = build_db(cached_config(256 * 1024, policy))
    client = db.connect()
    warm_cache(db)
    adversary = Adversary(db.storage.memory)
    ATTACKS["corrupt"](db, adversary)
    caught = detect(db, client, "corrupt")
    assert isinstance(caught, DETECTION_ERRORS)


def test_hot_hit_probe_never_masks_corruption():
    """Hammer the attacked key so reads are served from the cache, then
    verify: the verification pass reads the untrusted store directly,
    so warm trusted copies cannot defer the alarm."""
    db = build_db(cached_config(8 * 1024 * 1024))
    warm_cache(db)
    adversary = Adversary(db.storage.memory)
    ATTACKS["corrupt"](db, adversary)
    # post-attack hot reads: served trusted, and that is sound — the
    # cached value IS the honest value the attacker overwrote
    for _ in range(5):
        rows = db.sql("SELECT balance FROM acct WHERE id = 5").rows
        assert rows == [(500,)]
    with pytest.raises(VerificationFailure):
        db.verify_now()
    # after the alarm the stale copy is gone; nothing serves id=5 from
    # the cache anymore
    assert len(db.storage.cache) == 0


def test_miss_path_detects_after_epoch_flush():
    """The miss side of the matrix: a clean epoch close empties the
    cache, so the next read of an erased cell goes to the untrusted
    store and the protocol alarms."""
    db = build_db(cached_config(8 * 1024 * 1024))
    warm_cache(db)
    db.verify_now()  # clean close: flushes every cached entry
    assert len(db.storage.cache) == 0
    adversary = Adversary(db.storage.memory)
    ATTACKS["erase"](db, adversary)
    with pytest.raises(DETECTION_ERRORS):
        db.sql("SELECT balance FROM acct WHERE id = 7")
