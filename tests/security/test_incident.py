"""Forensic localization after a verification alarm."""

import pytest

from repro.core.config import VeriDBConfig
from repro.core.database import VeriDB
from repro.core.incident import audit_table, investigate
from repro.errors import VerificationFailure
from repro.memory.adversary import Adversary
from repro.memory.cells import make_addr


@pytest.fixture
def db():
    database = VeriDB(VeriDBConfig(key_seed=66))
    database.sql(
        "CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER NOT NULL, "
        "note TEXT, CHAIN (v))"
    )
    for i in range(20):
        database.sql(f"INSERT INTO t VALUES ({i}, {i * 2}, 'n{i}')")
    database.verify_now()
    return database


def _addr(db, pk):
    table = db.table("t")
    rid = table.indexes[0].search(pk)
    page = table.heap.get_page(rid.page_id)
    offset, _ = page.slot_offset_for_compaction(rid.slot)
    return make_addr(rid.page_id, offset), rid.page_id


def _alarm(db):
    with pytest.raises(VerificationFailure) as excinfo:
        db.verify_now()
    return excinfo.value


def test_clean_table_no_anomalies(db):
    assert audit_table(db.table("t")) == []
    report = investigate(db)
    assert not report.localized
    assert "manual audit" in report.summary()


def test_garbage_bytes_localized(db):
    addr, page_id = _addr(db, 7)
    cell = db.storage.memory.raw_read(addr)
    Adversary(db.storage.memory).corrupt(addr, b"\xde\xad\xbe\xef" * 8)
    error = _alarm(db)
    report = investigate(db, error)
    assert report.partition == error.partition
    assert report.localized
    kinds = {a.kind for a in report.anomalies}
    assert "undecodable" in kinds
    assert any(a.page_id == page_id for a in report.anomalies)
    assert "page" in report.summary()


def test_erased_record_localized(db):
    addr, page_id = _addr(db, 7)
    Adversary(db.storage.memory).erase(addr)
    error = _alarm(db)
    report = investigate(db, error)
    assert any(
        a.kind == "undecodable" and "vanished" in a.detail
        for a in report.anomalies
    )


def test_forged_nkey_localized_as_broken_link(db):
    """A well-formed forgery that redirects a chain pointer."""
    table = db.table("t")
    addr, _ = _addr(db, 7)
    cell = db.storage.memory.raw_read(addr)
    stored = table.layout.from_tuple(table.codec.decode(cell.data))
    stored.chain_nexts[0] = 9999  # no such key
    Adversary(db.storage.memory).corrupt(
        addr, table.codec.encode(table.layout.to_tuple(stored))
    )
    error = _alarm(db)
    report = investigate(db, error)
    kinds = {a.kind for a in report.anomalies}
    assert "broken-link" in kinds
    # the rest of the chain past the break is flagged as orphaned
    assert "orphan" in kinds


def test_payload_only_forgery_not_localized_but_evidenced(db):
    """A forgery that decodes and keeps chains intact: the partition
    digest mismatch remains the evidence."""
    table = db.table("t")
    addr, _ = _addr(db, 7)
    cell = db.storage.memory.raw_read(addr)
    stored = table.layout.from_tuple(table.codec.decode(cell.data))
    stored.data_fields = ("forged-note",)
    Adversary(db.storage.memory).corrupt(
        addr, table.codec.encode(table.layout.to_tuple(stored))
    )
    error = _alarm(db)
    report = investigate(db, error)
    assert not report.localized
    assert report.partition is not None
    assert "partition digest mismatch" in report.summary()


def test_forensics_do_not_disturb_state(db):
    """Auditing a healthy database leaves it verifiable."""
    audit_table(db.table("t"))
    db.verify_now()  # raw reads left no trace in RS/WS
