"""Unit tests for the exporters (repro.obs.export)."""

import json
import threading

from repro.core.incident import IncidentLog
from repro.faults.plane import ChaosPlane
from repro.faults.schedule import ChaosSchedule
from repro.obs import (
    NULL_EVENT_SINK,
    JsonlEventSink,
    MetricsRegistry,
    NullRegistry,
    default_event_sink,
    render_prometheus,
    scoped_event_sink,
    scoped_registry,
    set_default_event_sink,
    write_prometheus_snapshot,
)
from repro.obs.export import histogram_quantile


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------
def test_render_counter_and_gauge():
    reg = MetricsRegistry()
    reg.counter("portal.queries").inc(3)
    reg.gauge("sgx.epc_pages").set(17)
    text = render_prometheus(reg)
    assert "# TYPE veridb_portal_queries counter" in text
    assert "veridb_portal_queries 3" in text
    assert "# TYPE veridb_sgx_epc_pages gauge" in text
    assert "veridb_sgx_epc_pages 17" in text


def test_render_name_sanitization():
    reg = MetricsRegistry()
    reg.counter("sql.op.HashJoin.self-time").inc()
    text = render_prometheus(reg)
    assert "veridb_sql_op_HashJoin_self_time 1" in text


def test_render_histogram_cumulative_buckets():
    reg = MetricsRegistry()
    hist = reg.histogram("memory.batch_cells")
    hist.observe(0)  # zero bucket (key None)
    hist.observe(1.5)  # exponent 0 -> upper bound 2
    hist.observe(3.0)  # exponent 1 -> upper bound 4
    hist.observe(3.5)  # exponent 1
    text = render_prometheus(reg)
    # cumulative: zero bucket folds into the smallest finite bound
    assert 'veridb_memory_batch_cells_bucket{le="2"} 2' in text
    assert 'veridb_memory_batch_cells_bucket{le="4"} 4' in text
    assert 'veridb_memory_batch_cells_bucket{le="+Inf"} 4' in text
    assert "veridb_memory_batch_cells_count 4" in text
    assert "veridb_memory_batch_cells_sum 8" in text


def test_render_null_registry_is_empty():
    assert render_prometheus(NullRegistry()) == ""


def test_write_prometheus_snapshot(tmp_path):
    reg = MetricsRegistry()
    reg.counter("a.b").inc()
    path = write_prometheus_snapshot(reg, str(tmp_path / "metrics.prom"))
    content = open(path).read()
    assert content.endswith("\n")
    assert "veridb_a_b 1" in content


def test_histogram_quantile_from_snapshot():
    reg = MetricsRegistry()
    hist = reg.histogram("x.y")
    for v in (1.0, 1.5, 3.0, 100.0):
        hist.observe(v)
    snap = reg.snapshot()["x.y"]
    assert histogram_quantile(snap, 0.5) <= 4.0
    assert histogram_quantile(snap, 1.0) == 100.0
    assert histogram_quantile({"count": 0}, 0.5) == 0.0


# ----------------------------------------------------------------------
# event sinks
# ----------------------------------------------------------------------
def test_null_sink_is_default_and_drops():
    assert default_event_sink() is NULL_EVENT_SINK
    NULL_EVENT_SINK.emit({"type": "whatever"})
    assert NULL_EVENT_SINK.events == ()
    assert not NULL_EVENT_SINK.enabled


def test_jsonl_sink_in_memory_stamps_seq_and_ts():
    sink = JsonlEventSink(registry=MetricsRegistry())
    sink.emit({"type": "a"})
    sink.emit({"type": "b"})
    events = sink.events
    assert [e["type"] for e in events] == ["a", "b"]
    assert [e["seq"] for e in events] == [1, 2]
    assert all("ts" in e for e in events)


def test_jsonl_sink_counts_emissions():
    reg = MetricsRegistry()
    sink = JsonlEventSink(registry=reg)
    sink.emit({"type": "x"})
    sink.emit({"type": "x"})
    assert reg.counter("obs.events_emitted").value == 2


def test_jsonl_sink_file_mode(tmp_path):
    path = tmp_path / "events.jsonl"
    with JsonlEventSink(path=str(path), registry=MetricsRegistry()) as sink:
        sink.emit({"type": "span_open", "name": "x"})
        sink.emit({"type": "span_close", "name": "x"})
    lines = path.read_text().strip().splitlines()
    assert len(lines) == 2
    parsed = [json.loads(line) for line in lines]
    assert parsed[0]["type"] == "span_open"
    assert parsed[1]["seq"] == 2


def test_scoped_event_sink_installs_and_restores():
    with scoped_event_sink() as sink:
        assert default_event_sink() is sink
        default_event_sink().emit({"type": "inner"})
    assert default_event_sink() is NULL_EVENT_SINK
    assert sink.events_of("inner")


def test_scoped_event_sink_thread_isolated():
    barrier = threading.Barrier(2)
    failures = []

    def worker(name):
        try:
            with scoped_event_sink() as sink:
                barrier.wait()
                default_event_sink().emit({"type": name})
                barrier.wait()
                types = [e["type"] for e in sink.events]
                if types != [name]:
                    failures.append(f"{name} saw {types}")
        except Exception as exc:
            failures.append(repr(exc))

    threads = [threading.Thread(target=worker, args=(n,)) for n in ("a", "b")]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not failures, failures


def test_set_default_event_sink_process_wide():
    sink = JsonlEventSink(registry=MetricsRegistry())
    previous = set_default_event_sink(sink)
    try:
        assert default_event_sink() is sink
    finally:
        set_default_event_sink(NULL_EVENT_SINK)
    assert previous is sink


# ----------------------------------------------------------------------
# component event emission
# ----------------------------------------------------------------------
def test_spans_emit_open_close_events():
    reg = MetricsRegistry()
    with scoped_event_sink() as sink:
        with reg.span("portal.execute_seconds"):
            pass
    opens = sink.events_of("span_open")
    closes = sink.events_of("span_close")
    assert [e["name"] for e in opens] == ["portal.execute_seconds"]
    assert [e["name"] for e in closes] == ["portal.execute_seconds"]
    assert closes[0]["elapsed_seconds"] >= 0.0
    assert closes[0]["self_seconds"] >= 0.0


def test_incident_log_emits_events():
    with scoped_registry(MetricsRegistry()):
        log = IncidentLog()
        with scoped_event_sink() as sink:
            log.open("verifier-down", "background verifier crashed")
            log.resolve("verifier-down")
    opened = sink.events_of("incident_open")
    resolved = sink.events_of("incident_resolve")
    assert opened[0]["key"] == "verifier-down"
    assert "crashed" in opened[0]["message"]
    assert resolved[0]["key"] == "verifier-down"


def test_fault_plane_emits_events():
    plane = ChaosPlane(
        ChaosSchedule(seed=3, rates={"layer.site": 1.0}, limit_per_site=1),
        registry=MetricsRegistry(),
    )
    with scoped_event_sink() as sink:
        try:
            plane.check("layer.site")
        except Exception:
            pass
        plane.check("layer.site")  # limit reached: no further firing
    events = sink.events_of("fault_injected")
    assert len(events) == 1
    assert events[0]["site"] == "layer.site"
    assert events[0]["action"] == "raise"
    assert events[0]["ordinal"] >= 1


def test_verifier_emits_epoch_close_events():
    from repro.storage.config import StorageConfig
    from repro.storage.engine import StorageEngine
    from repro.workloads.micro import KVTable

    with scoped_registry(MetricsRegistry()):
        engine = StorageEngine(StorageConfig())
        kv = KVTable(engine)
        for i in range(5):
            kv.insert(i, f"v{i}")
        with scoped_event_sink() as sink:
            engine.verify_now()
    events = sink.events_of("epoch_close")
    assert len(events) == 1
    assert events[0]["alarm"] is False
    assert events[0]["partitions"] == []
    assert events[0]["pass_number"] == 1
