"""Fleet observability building blocks (unit level).

Histogram merge-by-bucket-addition, quantile edge cases, registry
delta/fold round trips, the rolling-window SLO tracker, the health
monitor's raise/clear state machine, and the Prometheus renderer +
linter over labeled series.
"""

import pytest

from repro.obs.export import (
    JsonlEventSink,
    histogram_quantile,
    render_prometheus,
)
from repro.obs.fleet import (
    HealthMonitor,
    SloTracker,
    fold_metric_delta,
    snapshot_delta,
)
from repro.obs.metrics import (
    Histogram,
    MetricsRegistry,
    series_key,
    split_series_key,
)
from repro.obs.promlint import lint_prometheus, parse_prometheus
from repro.core.config import ShardConfig


# ----------------------------------------------------------------------
# series keys
# ----------------------------------------------------------------------
def test_series_key_round_trip():
    key = series_key("shard.request_seconds", {"shard": "3", "op": "stmt"})
    assert key == 'shard.request_seconds{op="stmt",shard="3"}'
    base, labels = split_series_key(key)
    assert base == "shard.request_seconds"
    assert labels == {"shard": "3", "op": "stmt"}
    assert split_series_key("plain.name") == ("plain.name", {})


def test_labeled_series_are_distinct_instruments():
    reg = MetricsRegistry()
    a = reg.counter("shard.requests", labels={"shard": "0"})
    b = reg.counter("shard.requests", labels={"shard": "1"})
    a.inc(3)
    b.inc(5)
    snap = reg.snapshot()
    assert snap['shard.requests{shard="0"}']["value"] == 3
    assert snap['shard.requests{shard="1"}']["value"] == 5
    assert snap['shard.requests{shard="0"}']["labels"] == {"shard": "0"}


def test_cross_type_conflict_detected_across_label_sets():
    reg = MetricsRegistry()
    reg.counter("dup.metric", labels={"shard": "0"})
    with pytest.raises(ValueError):
        reg.gauge("dup.metric", labels={"shard": "1"})


# ----------------------------------------------------------------------
# log2-histogram merge
# ----------------------------------------------------------------------
def test_histogram_merge_adds_buckets():
    a = Histogram("h")
    b = Histogram("h")
    for value in (0.5, 3.0, 100.0):
        a.observe(value)
    for value in (3.5, 0.25):
        b.observe(value)
    a.merge_snapshot(b.snapshot())
    snap = a.snapshot()
    assert snap["count"] == 5
    assert snap["sum"] == pytest.approx(107.25)
    assert snap["min"] == 0.25
    assert snap["max"] == 100.0
    # 3.0 and 3.5 share the exponent-1 bucket (2, 4]
    assert snap["buckets"][1] == 2


def test_histogram_merge_empty_snapshot_is_noop():
    h = Histogram("h")
    h.observe(1.0)
    before = h.snapshot()
    h.merge_snapshot(Histogram("other").snapshot())
    assert h.snapshot() == before


# ----------------------------------------------------------------------
# histogram_quantile edge cases
# ----------------------------------------------------------------------
def test_quantile_empty_histogram_is_zero():
    assert histogram_quantile(Histogram("h").snapshot(), 0.99) == 0.0


def test_quantile_single_bucket_bounded_by_max():
    h = Histogram("h")
    h.observe(3.0)  # exponent 1, upper bound 4.0
    snap = h.snapshot()
    assert histogram_quantile(snap, 0.5) == 3.0  # clamped to max
    assert histogram_quantile(snap, 0.99) == 3.0


def test_quantile_merged_across_shards():
    fast = Histogram("h")
    slow = Histogram("h")
    for _ in range(99):
        fast.observe(0.01)
    slow.observe(10.0)
    fast.merge_snapshot(slow.snapshot())
    merged = fast.snapshot()
    assert merged["count"] == 100
    # the p50 lives in the fast bucket, the p99+ in the slow shard's
    assert histogram_quantile(merged, 0.5) <= 0.02
    assert histogram_quantile(merged, 0.995) == 10.0


# ----------------------------------------------------------------------
# registry deltas and the coordinator fold
# ----------------------------------------------------------------------
def _worker_registry():
    reg = MetricsRegistry()
    reg.counter("memory.verified_reads").inc(7)
    reg.gauge("sql.plan_cache_size").set(4)
    h = reg.histogram("sql.execute_seconds")
    h.observe(0.25)
    h.observe(0.5)
    return reg


def test_snapshot_delta_counters_and_histograms():
    reg = _worker_registry()
    baseline = reg.snapshot()
    reg.counter("memory.verified_reads").inc(3)
    reg.histogram("sql.execute_seconds").observe(1.5)
    delta = snapshot_delta(reg.snapshot(), baseline)
    assert delta["memory.verified_reads"]["value"] == 3
    assert delta["sql.execute_seconds"]["count"] == 1
    assert delta["sql.execute_seconds"]["sum"] == pytest.approx(1.5)
    # gauges always report their level
    assert delta["sql.plan_cache_size"]["value"] == 4


def test_snapshot_delta_drops_unchanged_series():
    reg = _worker_registry()
    baseline = reg.snapshot()
    delta = snapshot_delta(reg.snapshot(), baseline)
    assert "memory.verified_reads" not in delta
    assert "sql.execute_seconds" not in delta


def test_fold_delta_applies_shard_label():
    worker = _worker_registry()
    coordinator = MetricsRegistry()
    folded = fold_metric_delta(
        coordinator, snapshot_delta(worker.snapshot(), {}), {"shard": "2"}
    )
    assert folded == 3
    snap = coordinator.snapshot()
    assert snap['memory.verified_reads{shard="2"}']["value"] == 7
    assert snap['sql.execute_seconds{shard="2"}']["count"] == 2
    # folding a second identical delta accumulates
    fold_metric_delta(
        coordinator, snapshot_delta(worker.snapshot(), {}), {"shard": "2"}
    )
    assert coordinator.snapshot()['memory.verified_reads{shard="2"}']["value"] == 14


# ----------------------------------------------------------------------
# SLO tracker
# ----------------------------------------------------------------------
def _registry_with_requests(latencies, errors=0):
    reg = MetricsRegistry()
    h = reg.histogram("shard.request_seconds", labels={"shard": "0"})
    for value in latencies:
        h.observe(value)
    if errors:
        reg.counter("shard.reply_lost").inc(errors)
    return reg


def test_slo_tracker_windowed_p99():
    tracker = SloTracker(
        window_seconds=60.0, p99_target=1.0, error_rate_target=0.01
    )
    reg = _registry_with_requests([])
    tracker.sample(reg.snapshot(), now=0.0)
    h = reg.histogram("shard.request_seconds", labels={"shard": "0"})
    for _ in range(200):
        h.observe(0.01)
    view = tracker.sample(reg.snapshot(), now=10.0)
    assert view["requests"] == 200
    assert view["p99_seconds"] <= 0.02
    assert view["budget_burn"] == 0.0


def test_slo_tracker_error_budget_burn():
    tracker = SloTracker(
        window_seconds=60.0, p99_target=1.0, error_rate_target=0.01
    )
    reg = _registry_with_requests([0.01] * 90, errors=0)
    tracker.sample(reg.snapshot(), now=0.0)
    reg.counter("shard.reply_lost").inc(10)
    h = reg.histogram("shard.request_seconds", labels={"shard": "0"})
    for _ in range(90):
        h.observe(0.01)
    view = tracker.sample(reg.snapshot(), now=5.0)
    assert view["errors"] == 10
    assert view["error_rate"] == pytest.approx(0.1)
    assert view["budget_burn"] == pytest.approx(10.0)


def test_slo_tracker_window_expires_old_samples():
    tracker = SloTracker(
        window_seconds=10.0, p99_target=1.0, error_rate_target=0.01
    )
    reg = _registry_with_requests([5.0])  # old slow request
    tracker.sample(reg.snapshot(), now=0.0)
    tracker.sample(reg.snapshot(), now=11.0)  # becomes the new base
    view = tracker.sample(reg.snapshot(), now=12.0)
    assert view["requests"] == 0
    assert view["p99_seconds"] == 0.0


# ----------------------------------------------------------------------
# health monitor state machine
# ----------------------------------------------------------------------
def _monitor(poll, sink, registry=None):
    return HealthMonitor(
        poll=poll,
        shard_ids=[0],
        config=ShardConfig(shard_count=1),
        coordinator_round=lambda: 0,
        registry=registry or MetricsRegistry(),
        sink=sink,
    )


def _healthy_report(shard_id):
    return {
        "shard": shard_id,
        "fleet_round": 0,
        "epoch": 0,
        "wal_pending": 0,
        "cache_hits": 0,
        "cache_misses": 0,
        "epc": {"capacity": 100, "resident": 10, "swapped": 0},
    }


def test_monitor_raises_and_clears_worker_down():
    sink = JsonlEventSink()
    state = {"up": True}

    def poll(shard_id):
        if not state["up"]:
            raise RuntimeError("pipe broken")
        return _healthy_report(shard_id)

    monitor = _monitor(poll, sink)
    assert monitor.check()["healthy"]
    state["up"] = False
    report = monitor.check()
    assert not report["healthy"]
    assert report["alerts"][0]["alert"] == "worker_down"
    # a second failing poll does not re-raise the same alert
    monitor.check()
    state["up"] = True
    assert monitor.check()["healthy"]
    types = [e["type"] for e in sink.events if e["type"].startswith("alert")]
    assert types == ["alert_raised", "alert_cleared"]


def test_monitor_threshold_rules():
    sink = JsonlEventSink()
    report = _healthy_report(0)
    monitor = _monitor(lambda _sid: report, sink)
    report["wal_pending"] = 5000  # over the default 1024
    report["epc"] = {"capacity": 100, "resident": 95, "swapped": 5}
    alerts = {a["alert"] for a in monitor.check()["alerts"]}
    assert alerts == {"wal_lag", "epc_pressure"}
    report["wal_pending"] = 0
    report["epc"] = {"capacity": 100, "resident": 10, "swapped": 0}
    assert monitor.check()["healthy"]


def test_monitor_gauges_exported():
    reg = MetricsRegistry()
    monitor = _monitor(lambda sid: _healthy_report(sid), JsonlEventSink(), reg)
    monitor.check()
    snap = reg.snapshot()
    assert snap['health.worker_up{shard="0"}']["value"] == 1
    assert snap["health.alerts_active"]["value"] == 0
    assert snap["health.polls"]["value"] == 1


# ----------------------------------------------------------------------
# renderer + linter over labeled series
# ----------------------------------------------------------------------
def _fleet_like_registry():
    reg = MetricsRegistry()
    reg.counter("portal.queries").inc(12)
    for shard in ("0", "1"):
        reg.counter(
            "memory.verified_reads", labels={"shard": shard}
        ).inc(30)
        h = reg.histogram("shard.request_seconds", labels={"shard": shard})
        for value in (0.001, 0.01, 0.1):
            h.observe(value)
    return reg


def test_render_prometheus_labeled_families_lint_clean():
    text = render_prometheus(_fleet_like_registry())
    assert lint_prometheus(text) == []
    assert '# TYPE veridb_shard_request_seconds histogram' in text
    assert 'veridb_memory_verified_reads{shard="0"} 30' in text
    assert 'veridb_shard_request_seconds_bucket{shard="1",le="+Inf"} 3' in text
    # one TYPE header per family even with two labeled series
    assert text.count("# TYPE veridb_shard_request_seconds") == 1


def test_parse_prometheus_reads_back_samples():
    parsed = parse_prometheus(render_prometheus(_fleet_like_registry()))
    assert not parsed["errors"]
    names = {name for name, _labels, _value, _line in parsed["samples"]}
    assert "veridb_portal_queries" in names
    assert "veridb_shard_request_seconds_bucket" in names


def test_lint_flags_missing_type():
    assert any(
        "no TYPE" in problem
        for problem in lint_prometheus("orphan_metric 12\n")
    )


def test_lint_flags_non_monotone_buckets():
    bad = (
        "# HELP m h\n# TYPE m histogram\n"
        'm_bucket{le="1"} 5\nm_bucket{le="2"} 3\n'
        'm_bucket{le="+Inf"} 5\nm_sum 1\nm_count 5\n'
    )
    assert any("decrease" in problem for problem in lint_prometheus(bad))


def test_lint_flags_inf_count_mismatch_and_duplicates():
    bad = (
        "# HELP m h\n# TYPE m histogram\n"
        'm_bucket{le="+Inf"} 4\nm_sum 1\nm_count 5\n'
    )
    assert any("_count" in problem for problem in lint_prometheus(bad))
    dup = "# HELP c h\n# TYPE c counter\nc 1\nc 2\n"
    assert any("duplicate" in problem for problem in lint_prometheus(dup))
