"""Unit tests for the observability layer (repro.obs)."""

import threading

import pytest

from repro.obs import (
    KNOWN_LAYERS,
    NULL_REGISTRY,
    MetricsRegistry,
    NullRegistry,
    Stopwatch,
    current_span,
    default_registry,
    layer_breakdown,
    scoped_registry,
    set_default_registry,
    timed_call,
)


# ----------------------------------------------------------------------
# instruments
# ----------------------------------------------------------------------
def test_counter_increments():
    reg = MetricsRegistry()
    ctr = reg.counter("portal.queries")
    ctr.inc()
    ctr.inc(4)
    assert ctr.value == 5
    assert ctr.snapshot() == {"type": "counter", "value": 5}


def test_counter_is_shared_by_name():
    reg = MetricsRegistry()
    reg.counter("x").inc()
    reg.counter("x").inc()
    assert reg.counter("x").value == 2


def test_counter_thread_safety():
    reg = MetricsRegistry()
    ctr = reg.counter("hammer")

    def work():
        for _ in range(10_000):
            ctr.inc()

    threads = [threading.Thread(target=work) for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert ctr.value == 80_000


def test_gauge_set_inc_dec():
    reg = MetricsRegistry()
    g = reg.gauge("verifier.background_alive")
    g.set(3)
    g.inc()
    g.dec(2)
    assert g.value == 2
    assert g.snapshot()["type"] == "gauge"


def test_gauge_fn_evaluated_at_snapshot():
    reg = MetricsRegistry()
    state = {"n": 0}
    reg.gauge_fn("portal.qid_ledger_size", lambda: state["n"])
    state["n"] = 17
    assert reg.snapshot()["portal.qid_ledger_size"]["value"] == 17


def test_histogram_statistics():
    reg = MetricsRegistry()
    h = reg.histogram("lat")
    for v in (1.0, 2.0, 4.0, 8.0):
        h.observe(v)
    snap = h.snapshot()
    assert snap["count"] == 4
    assert snap["sum"] == 15.0
    assert snap["min"] == 1.0
    assert snap["max"] == 8.0
    assert snap["mean"] == pytest.approx(3.75)


def test_histogram_zero_and_negative_observations():
    reg = MetricsRegistry()
    h = reg.histogram("edge")
    h.observe(0.0)
    h.observe(-5.0)  # clamped to zero, never raises
    snap = h.snapshot()
    assert snap["count"] == 2
    assert snap["min"] == 0.0


def test_histogram_percentile_is_monotone():
    reg = MetricsRegistry()
    h = reg.histogram("p")
    for v in range(1, 101):
        h.observe(float(v))
    p50, p99 = h.percentile(0.5), h.percentile(0.99)
    assert 0 < p50 <= p99
    # log2 buckets: estimate within one power of two of the true value
    assert p99 <= 2 * 100


def test_timer_records_into_histogram():
    reg = MetricsRegistry()
    with reg.timer("t_seconds"):
        pass
    snap = reg.histogram("t_seconds").snapshot()
    assert snap["count"] == 1
    assert snap["max"] < 1.0


# ----------------------------------------------------------------------
# spans
# ----------------------------------------------------------------------
def test_span_nesting_attributes_child_time():
    reg = MetricsRegistry()
    with reg.span("outer") as outer:
        with reg.span("inner") as inner:
            pass
    assert current_span() is None
    assert inner.elapsed <= outer.elapsed
    assert outer.child_seconds == pytest.approx(inner.elapsed)
    assert outer.self_seconds == pytest.approx(
        outer.elapsed - inner.elapsed
    )
    assert reg.histogram("outer").snapshot()["count"] == 1
    assert reg.histogram("inner").snapshot()["count"] == 1


def test_span_stack_unwinds_on_exception():
    reg = MetricsRegistry()
    with pytest.raises(RuntimeError):
        with reg.span("failing"):
            raise RuntimeError("boom")
    assert current_span() is None
    assert reg.histogram("failing").snapshot()["count"] == 1


def test_stopwatch_accumulates_only_resumed_time():
    watch = Stopwatch()
    watch.resume()
    first = watch.pause()
    watch.resume()
    second = watch.pause()
    assert first >= 0.0 and second >= 0.0


def test_timed_call_returns_result_and_elapsed():
    result, elapsed = timed_call(lambda a, b: a + b, 2, 3)
    assert result == 5
    assert elapsed >= 0.0


# ----------------------------------------------------------------------
# registry plumbing
# ----------------------------------------------------------------------
def test_snapshot_is_sorted_and_typed():
    reg = MetricsRegistry()
    reg.counter("b").inc()
    reg.gauge("a").set(1)
    reg.histogram("c").observe(2)
    snap = reg.snapshot()
    assert list(snap) == sorted(snap)
    assert {d["type"] for d in snap.values()} == {
        "counter",
        "gauge",
        "histogram",
    }


def test_render_text_mentions_every_metric():
    reg = MetricsRegistry()
    reg.counter("portal.queries").inc(3)
    reg.histogram("sql.execute_seconds").observe(0.01)
    text = reg.render_text()
    assert "portal.queries" in text
    assert "sql.execute_seconds" in text


def test_reset_clears_values_but_keeps_bindings():
    reg = MetricsRegistry()
    ctr = reg.counter("n")
    ctr.inc(5)
    reg.reset()
    assert ctr.value == 0
    ctr.inc()  # the pre-reset handle still feeds the registry
    assert reg.snapshot()["n"]["value"] == 1


def test_duplicate_name_different_type_rejected():
    reg = MetricsRegistry()
    reg.counter("dup")
    with pytest.raises(Exception):
        reg.gauge("dup")


def test_layer_breakdown_groups_by_first_segment():
    reg = MetricsRegistry()
    reg.counter("portal.queries").inc()
    reg.counter("sgx.ecalls").inc()
    reg.counter("custom.thing").inc()
    grouped = layer_breakdown(reg.snapshot())
    assert "portal.queries" in grouped["portal"]
    assert "sgx.ecalls" in grouped["sgx"]
    assert "custom.thing" in grouped["custom"]
    assert set(KNOWN_LAYERS) == {
        "service",
        "shard",
        "health",
        "portal",
        "verifier",
        "memory",
        "storage",
        "sql",
        "sgx",
        "faults",
        "incidents",
        "wal",
        "recovery",
        "obs",
    }


# ----------------------------------------------------------------------
# null registry / default registry
# ----------------------------------------------------------------------
def test_null_registry_is_inert():
    null = NullRegistry()
    assert not null.enabled
    null.counter("x").inc()
    null.gauge("y").set(5)
    null.histogram("z").observe(1.0)
    with null.span("s"):
        with null.timer("t"):
            pass
    null.gauge_fn("g", lambda: 1)
    assert null.snapshot() == {}
    assert null.render_text() == ""


def test_null_instruments_are_shared_singletons():
    # the disabled path allocates nothing per call site
    assert NULL_REGISTRY.counter("a") is NULL_REGISTRY.counter("b")


def test_default_registry_is_null_unless_installed():
    assert default_registry().enabled is False


def test_scoped_registry_installs_and_restores():
    before = default_registry()
    with scoped_registry() as reg:
        assert default_registry() is reg
        assert reg.enabled
    assert default_registry() is before


def test_scoped_registry_accepts_existing_registry():
    mine = MetricsRegistry()
    with scoped_registry(mine) as reg:
        assert reg is mine


def test_set_default_registry_returns_previous():
    mine = MetricsRegistry()
    previous = set_default_registry(mine)
    try:
        assert default_registry() is mine
    finally:
        set_default_registry(previous)
    assert default_registry() is previous
