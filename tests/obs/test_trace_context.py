"""Unit tests for per-query trace contexts (repro.obs.trace_context)."""

import threading

from repro.obs import (
    MetricsRegistry,
    OpStats,
    TraceContext,
    current_trace,
    default_registry,
    scoped_registry,
    trace_active,
)
from repro.obs import trace_context as tc_module


# ----------------------------------------------------------------------
# the zero-cost gate
# ----------------------------------------------------------------------
def test_no_trace_active_by_default():
    assert not trace_active()
    assert current_trace() is None


def test_gate_short_circuits_before_contextvar(monkeypatch):
    """With no trace anywhere, current_trace must not read the ContextVar.

    This is the zero-cost contract the hot paths rely on: one integer
    compare per instrumented operation, nothing else. A poisoned
    ContextVar proves the short circuit.
    """

    class Poisoned:
        def get(self):
            raise AssertionError("ContextVar read on the inactive path")

    monkeypatch.setattr(tc_module, "_current", Poisoned())
    assert current_trace() is None


def test_enter_exit_toggles_gate_and_context():
    trace = TraceContext(qid="q-1")
    assert current_trace() is None
    with trace:
        assert trace_active()
        assert current_trace() is trace
    assert not trace_active()
    assert current_trace() is None
    assert trace.elapsed >= 0.0


def test_nested_contexts_restore_outer():
    outer = TraceContext(qid="outer")
    inner = TraceContext(qid="inner")
    with outer:
        with inner:
            assert current_trace() is inner
        assert current_trace() is outer


# ----------------------------------------------------------------------
# attribution stack
# ----------------------------------------------------------------------
def test_costs_land_on_top_frame():
    class FakeOp:
        pass

    op = FakeOp()
    with TraceContext(qid="q") as trace:
        trace.top.verified_reads += 1  # root
        frame = trace.op_stats(op)
        trace.push(frame)
        trace.top.verified_reads += 5
        trace.top.simulated_cycles += 8000
        trace.pop()
        trace.top.cache_hits += 2  # root again
    assert trace.root.verified_reads == 1
    assert trace.root.cache_hits == 2
    assert frame.verified_reads == 5
    assert frame.simulated_cycles == 8000
    assert frame.label == "FakeOp"


def test_op_stats_keyed_by_instance():
    class FakeOp:
        pass

    a, b = FakeOp(), FakeOp()
    trace = TraceContext(qid="q")
    assert trace.op_stats(a) is trace.op_stats(a)
    assert trace.op_stats(a) is not trace.op_stats(b)
    assert trace.op_stats_if_traced(a) is trace.op_stats(a)
    assert trace.op_stats_if_traced(object()) is None


def test_totals_sum_all_frames():
    class FakeOp:
        pass

    trace = TraceContext(qid="q-totals")
    trace.root.verified_reads = 3
    frame = trace.op_stats(FakeOp())
    frame.verified_reads = 7
    frame.cache_hits = 2
    totals = trace.totals()
    assert totals["verified_reads"] == 10
    assert totals["cache_hits"] == 2
    assert totals["label"] == "q-totals"


def test_opstats_add_and_as_dict():
    a = OpStats("a")
    a.verified_reads = 2
    a.wall_seconds = 0.5
    b = OpStats("b")
    b.verified_reads = 3
    b.epc_swaps = 1
    a.add(b)
    d = a.as_dict()
    assert d["verified_reads"] == 5
    assert d["epc_swaps"] == 1
    assert d["wall_seconds"] == 0.5
    assert d["label"] == "a"


# ----------------------------------------------------------------------
# thread isolation
# ----------------------------------------------------------------------
def test_concurrent_traces_stay_disjoint():
    """Two threads tracing at once never see each other's context."""
    barrier = threading.Barrier(2)
    results = {}

    def worker(name):
        with TraceContext(qid=name) as trace:
            barrier.wait()
            trace.top.verified_reads += 10 if name == "a" else 20
            barrier.wait()
            results[name] = (current_trace().qid, trace.root.verified_reads)

    threads = [threading.Thread(target=worker, args=(n,)) for n in ("a", "b")]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert results["a"] == ("a", 10)
    assert results["b"] == ("b", 20)


def test_trace_in_one_thread_invisible_in_another():
    seen = {}

    def prober():
        seen["trace"] = current_trace()

    with TraceContext(qid="main-only"):
        t = threading.Thread(target=prober)
        t.start()
        t.join()
        assert current_trace() is not None
    assert seen["trace"] is None


# ----------------------------------------------------------------------
# scoped_registry under concurrency (regression: it used to swap a
# process-global, so parallel scopes could restore each other's registry)
# ----------------------------------------------------------------------
def test_scoped_registry_concurrent_scopes_stay_isolated():
    barrier = threading.Barrier(4)
    failures = []

    def worker(i):
        mine = MetricsRegistry()
        try:
            with scoped_registry(mine):
                barrier.wait()
                default_registry().counter("iso.test").inc(i + 1)
                barrier.wait()
                if default_registry() is not mine:
                    failures.append(f"worker {i} lost its scope")
                if mine.counter("iso.test").value != i + 1:
                    failures.append(f"worker {i} counter cross-talk")
        except Exception as exc:  # barrier breakage etc.
            failures.append(repr(exc))

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not failures, failures


def test_scoped_registry_exit_restores_even_with_other_threads_active():
    """A scope exiting on one thread cannot clobber another's override."""
    release = threading.Event()
    entered = threading.Event()
    observed = {}

    reg_a = MetricsRegistry()
    reg_b = MetricsRegistry()

    def holder():
        with scoped_registry(reg_b):
            entered.set()
            release.wait(5)
            observed["inside"] = default_registry()
        observed["after"] = default_registry()

    t = threading.Thread(target=holder)
    t.start()
    entered.wait(5)
    # open and close a scope on the main thread while the holder's scope
    # is still live — under the old global-swap implementation this
    # restored the *main* thread's previous value into the global,
    # tearing down the holder's scope from the outside
    with scoped_registry(reg_a):
        assert default_registry() is reg_a
    release.set()
    t.join()
    assert observed["inside"] is reg_b
    assert observed["after"] is not reg_b
