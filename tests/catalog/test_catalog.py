"""Unit tests for the catalog registry."""

import pytest

from repro.catalog.catalog import Catalog, TableInfo
from repro.catalog.schema import Column, Schema
from repro.catalog.types import IntegerType
from repro.errors import CatalogError


def make_info(name):
    schema = Schema(columns=[Column("id", IntegerType())], primary_key="id")
    return TableInfo(name=name, schema=schema, store=object())


def test_register_and_lookup():
    catalog = Catalog()
    info = make_info("orders")
    catalog.register(info)
    assert catalog.lookup("orders") is info
    assert catalog.lookup("ORDERS") is info  # case-insensitive
    assert catalog.has_table("Orders")
    assert catalog.table_names() == ["orders"]


def test_duplicate_rejected():
    catalog = Catalog()
    catalog.register(make_info("t"))
    with pytest.raises(CatalogError):
        catalog.register(make_info("T"))


def test_unknown_lookup():
    catalog = Catalog()
    with pytest.raises(CatalogError):
        catalog.lookup("ghost")


def test_drop():
    catalog = Catalog()
    info = make_info("t")
    catalog.register(info)
    assert catalog.drop("t") is info
    assert not catalog.has_table("t")
    with pytest.raises(CatalogError):
        catalog.drop("t")
