"""Unit tests for column types and the chain-key sentinels."""

import datetime

import pytest

from repro.catalog.types import (
    BOTTOM,
    TOP,
    BooleanType,
    DateType,
    DecimalType,
    FloatType,
    IntegerType,
    TextType,
    type_from_name,
)
from repro.errors import CatalogError


def test_bottom_orders_below_everything():
    for value in (0, -(10**18), "", (0,), datetime.date.min, TOP):
        assert BOTTOM < value
        assert value > BOTTOM
    assert not BOTTOM < BOTTOM
    assert BOTTOM <= BOTTOM
    assert BOTTOM == BOTTOM


def test_top_orders_above_everything():
    for value in (10**18, "zzz", (10**9,), datetime.date.max, BOTTOM):
        assert TOP > value
        assert value < TOP
    assert not TOP > TOP
    assert TOP >= TOP


def test_sentinels_are_singletons():
    assert type(BOTTOM)() is BOTTOM
    assert type(TOP)() is TOP


def test_sentinels_in_tuples():
    assert (5, BOTTOM) < (5, 0) < (5, TOP) < (6, BOTTOM)


def test_integer_validation():
    t = IntegerType()
    assert t.validate(42) == 42
    assert t.validate(None) is None
    with pytest.raises(CatalogError):
        t.validate("42")
    with pytest.raises(CatalogError):
        t.validate(True)
    with pytest.raises(CatalogError):
        t.validate(2**63)


def test_float_validation():
    t = FloatType()
    assert t.validate(1.5) == 1.5
    assert t.validate(2) == 2.0
    assert isinstance(t.validate(2), float)
    with pytest.raises(CatalogError):
        t.validate("x")


def test_text_and_boolean():
    assert TextType().validate("abc") == "abc"
    assert BooleanType().validate(True) is True
    with pytest.raises(CatalogError):
        TextType().validate(1)


def test_date_normalizes_strings():
    t = DateType()
    assert t.validate("2021-06-20") == datetime.date(2021, 6, 20)
    assert t.validate(datetime.date(2021, 6, 20)) == datetime.date(2021, 6, 20)
    with pytest.raises(CatalogError):
        t.validate("junk")
    with pytest.raises(CatalogError):
        t.validate(datetime.datetime(2021, 6, 20))


def test_decimal_scaling():
    t = DecimalType(scale=2)
    assert t.from_display(19.99) == 1999
    assert t.to_display(1999) == 19.99
    assert t.validate(1999) == 1999
    with pytest.raises(CatalogError):
        DecimalType(scale=-1)


def test_type_from_name():
    assert isinstance(type_from_name("integer"), IntegerType)
    assert isinstance(type_from_name("VARCHAR"), TextType)
    with pytest.raises(CatalogError):
        type_from_name("BLOB")


def test_type_equality():
    assert IntegerType() == IntegerType()
    assert DecimalType(2) == DecimalType(2)
    assert DecimalType(2) != DecimalType(3)
    assert IntegerType() != FloatType()
