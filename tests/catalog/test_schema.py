"""Unit tests for schemas."""

import pytest

from repro.catalog.schema import Column, Schema
from repro.catalog.types import IntegerType, TextType
from repro.errors import CatalogError


def make_schema(**kwargs):
    return Schema(
        columns=[
            Column("id", IntegerType()),
            Column("name", TextType()),
            Column("qty", IntegerType()),
        ],
        primary_key="id",
        **kwargs,
    )


def test_basic_lookup():
    schema = make_schema()
    assert schema.column_names == ("id", "name", "qty")
    assert schema.column_index("qty") == 2
    assert schema.column("name").type == TextType()
    assert schema.has_column("id")
    assert not schema.has_column("nope")
    assert len(schema) == 3


def test_unknown_column_rejected():
    schema = make_schema()
    with pytest.raises(CatalogError):
        schema.column_index("ghost")


def test_primary_key_must_exist():
    with pytest.raises(CatalogError):
        Schema(columns=[Column("a", IntegerType())], primary_key="b")


def test_duplicate_columns_rejected():
    with pytest.raises(CatalogError):
        Schema(
            columns=[Column("a", IntegerType()), Column("a", TextType())],
            primary_key="a",
        )


def test_chains_default_to_pk():
    schema = make_schema()
    assert schema.chains == ("id",)
    assert schema.chain_id("id") == 0
    assert schema.chain_id("name") is None


def test_extra_chain_columns():
    schema = make_schema(chain_columns=["qty"])
    assert schema.chains == ("id", "qty")
    assert schema.chain_id("qty") == 1


def test_pk_not_repeated_in_chains():
    with pytest.raises(CatalogError):
        make_schema(chain_columns=["id"])


def test_unknown_chain_column_rejected():
    with pytest.raises(CatalogError):
        make_schema(chain_columns=["ghost"])


def test_validate_row():
    schema = make_schema()
    assert schema.validate_row((1, "x", 2)) == (1, "x", 2)
    with pytest.raises(CatalogError):
        schema.validate_row((1, "x"))
    with pytest.raises(CatalogError):
        schema.validate_row(("a", "x", 2))


def test_primary_key_implicitly_not_null():
    schema = make_schema()
    with pytest.raises(CatalogError):
        schema.validate_row((None, "x", 2))
    # other columns remain nullable
    assert schema.validate_row((1, None, None)) == (1, None, None)


def test_row_from_dict():
    schema = make_schema()
    assert schema.row_from_dict({"id": 1, "qty": 5}) == (1, None, 5)
    with pytest.raises(CatalogError):
        schema.row_from_dict({"bogus": 1})
