"""Property: the record cache is invisible to results and verification.

The trusted cache (``StorageConfig.cache_bytes``) is a pure latency
optimization — for any mixed workload (point reads, range scans,
inserts, deletes, updates, mid-stream verification passes with
deferred compaction) a cache-enabled table must return byte-identical
results to a cache-disabled one, leave the *data* content of the
untrusted store identical address by address, and close every epoch
cleanly. Timestamps are the one permitted divergence: a hit skips the
Algorithm-1 re-stamp by design, so cells age differently — which is
exactly why the comparison is over data bytes, not raw cells.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.catalog.schema import Column, Schema
from repro.catalog.types import IntegerType, TextType
from repro.storage.config import StorageConfig
from repro.storage.engine import StorageEngine
from repro.storage.table_store import VerifiableTable

CACHE_BYTES = 256 * 1024


def make_table(batch_size: int, cache_bytes: int, cache_policy: str = "lru"):
    schema = Schema(
        columns=[
            Column("pk", IntegerType()),
            Column("grp", IntegerType(), nullable=False),
            Column("note", TextType()),
        ],
        primary_key="pk",
        chain_columns=("grp",),
    )
    engine = StorageEngine(
        StorageConfig(
            page_size=1024,
            batch_size=batch_size,
            cache_bytes=cache_bytes,
            cache_policy=cache_policy,
        )
    )
    return VerifiableTable("t", schema, engine), engine


_op = st.one_of(
    st.tuples(
        st.just("insert"),
        st.integers(0, 30),
        st.integers(0, 5),
        st.text(max_size=12),
    ),
    st.tuples(st.just("delete"), st.integers(0, 30)),
    st.tuples(
        st.just("update"),
        st.integers(0, 30),
        st.integers(0, 5),
        st.text(max_size=12),
    ),
    st.tuples(st.just("get"), st.integers(0, 30)),
    st.tuples(st.just("scan"), st.integers(0, 30), st.integers(0, 30)),
    st.tuples(st.just("verify")),
)


def apply(table, engine, op):
    """Run one op, returning its observable result."""
    kind = op[0]
    if kind == "insert":
        _, pk, grp, note = op
        try:
            table.insert((pk, grp, note))
            return ("ok",)
        except Exception as exc:
            return ("err", type(exc).__name__)
    if kind == "delete":
        return table.delete(op[1])
    if kind == "update":
        _, pk, grp, note = op
        return table.update(pk, {"grp": grp, "note": note})
    if kind == "get":
        row, proof = table.get(op[1])
        proof.check()
        return row
    if kind == "scan":
        lo, hi = min(op[1], op[2]), max(op[1], op[2])
        return table.scan(lo=lo, hi=hi)
    # mid-stream epoch close: flushes the cache, runs deferred
    # compaction, and must never alarm on this honest history
    engine.verify_now()
    return ("verified",)


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    ops=st.lists(_op, max_size=50),
    policy=st.sampled_from(["lru", "clock", "2q"]),
)
@pytest.mark.parametrize("batch_size", [1, 7, 256])
def test_cache_is_result_invisible(batch_size, ops, policy):
    plain_table, plain_engine = make_table(batch_size, 0)
    cached_table, cached_engine = make_table(
        batch_size, CACHE_BYTES, policy
    )
    assert cached_engine.cache is not None
    for op in ops:
        plain_out = apply(plain_table, plain_engine, op)
        cached_out = apply(cached_table, cached_engine, op)
        assert plain_out == cached_out, op
    # final contents agree row for row
    assert cached_table.seq_scan() == plain_table.seq_scan()
    # the untrusted stores hold identical data at identical addresses
    plain_cells = {
        addr: cell.data for addr, cell in plain_engine.memory.cells()
    }
    cached_cells = {
        addr: cell.data for addr, cell in cached_engine.memory.cells()
    }
    assert cached_cells == plain_cells
    # both histories are honest: the epoch closes with no alarm, and
    # the close leaves the cache empty (epoch-flush regression guard)
    plain_engine.verify_now()
    cached_engine.verify_now()
    assert len(cached_engine.cache) == 0
