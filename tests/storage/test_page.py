"""Unit tests for slotted pages."""

import pytest

from repro.crypto.prf import PRF
from repro.errors import PageFullError, StorageError
from repro.memory.rsws import RSWSGroup
from repro.memory.verified import VerifiedMemory
from repro.memory.verifier import Verifier
from repro.storage.page import DATA_BASE, Page


def make_page(capacity=1024, verify_data=True, verify_metadata=False, page_id=0):
    vmem = VerifiedMemory(prf=PRF(b"p" * 32), rsws=RSWSGroup(n_partitions=1))
    if verify_data:
        vmem.register_page(page_id)
    page = Page(
        page_id,
        vmem,
        capacity=capacity,
        verify_data=verify_data,
        verify_metadata=verify_metadata,
    )
    return page, vmem


def test_insert_read_roundtrip():
    page, _ = make_page()
    slot = page.insert(b"hello world")
    assert page.read(slot) == b"hello world"
    assert page.record_count == 1


def test_multiple_records_distinct_slots():
    page, _ = make_page()
    slots = [page.insert(f"rec{i}".encode()) for i in range(10)]
    assert len(set(slots)) == 10
    for i, slot in enumerate(slots):
        assert page.read(slot) == f"rec{i}".encode()


def test_page_full():
    page, _ = make_page(capacity=600)
    page.insert(b"x" * 256)
    page.insert(b"y" * 256)
    with pytest.raises(PageFullError):
        page.insert(b"z" * 256)


def test_delete_reclaims_logical_space():
    page, _ = make_page(capacity=600)
    a = page.insert(b"x" * 256)
    page.insert(b"y" * 256)
    page.delete(a)
    # deferred: hole remains but logical space allows the insert
    page.insert(b"z" * 256)
    assert page.record_count == 2


def test_delete_then_read_fails():
    page, _ = make_page()
    slot = page.insert(b"x")
    page.delete(slot)
    with pytest.raises(StorageError):
        page.read(slot)


def test_slot_reuse_after_delete():
    page, _ = make_page()
    slot = page.insert(b"a")
    page.delete(slot)
    slot2 = page.insert(b"b")
    assert slot2 == slot


def test_in_place_write():
    page, _ = make_page()
    slot = page.insert(b"short")
    page.write(slot, b"a-longer-payload")
    assert page.read(slot) == b"a-longer-payload"


def test_in_place_growth_respects_capacity():
    page, _ = make_page(capacity=600)
    slot = page.insert(b"x" * 100)
    page.insert(b"y" * 400)
    with pytest.raises(PageFullError):
        page.write(slot, b"x" * 200)


def test_fragmentation_and_compact():
    page, vmem = make_page(capacity=4096)
    slots = [page.insert(bytes([i]) * 64) for i in range(8)]
    for slot in slots[::2]:
        page.delete(slot)
    assert page.fragmentation > 0.4
    moved = page.compact()
    assert moved > 0
    assert page.fragmentation == 0.0
    for i, slot in enumerate(slots):
        if i % 2 == 1:
            assert page.read(slot) == bytes([i]) * 64
    Verifier(vmem).run_pass()  # all moves were integrity-protected


def test_relocate_down_closes_hole():
    page, vmem = make_page(capacity=4096)
    a = page.insert(b"a" * 64)
    b = page.insert(b"b" * 64)
    c = page.insert(b"c" * 64)
    offset, length = page.slot_offset_for_compaction(a)
    page.delete(a)
    moved = page.relocate_down(offset, length)
    assert moved == 2
    assert page.read(b) == b"b" * 64
    assert page.read(c) == b"c" * 64
    assert page.fragmentation == 0.0
    Verifier(vmem).run_pass()


def test_metadata_unverified_by_default():
    page, vmem = make_page(verify_metadata=False)
    baseline_ops = vmem.rsws.total_operations()
    page.insert(b"payload")
    with_metadata_excluded = vmem.rsws.total_operations() - baseline_ops
    # only the record payload cell hits the RSWS (one alloc = one write)
    assert with_metadata_excluded == 1


def test_metadata_verified_costs_more():
    plain, vmem_plain = make_page(verify_metadata=False)
    strict, vmem_strict = make_page(verify_metadata=True)
    plain.insert(b"payload")
    strict.insert(b"payload")
    assert (
        vmem_strict.rsws.total_operations()
        > vmem_plain.rsws.total_operations()
    )


def test_unverified_page_mode():
    page, vmem = make_page(verify_data=False)
    slot = page.insert(b"x")
    assert page.read(slot) == b"x"
    assert vmem.rsws.total_operations() == 0


def test_verification_pass_clean_after_page_activity():
    page, vmem = make_page()
    slots = [page.insert(f"r{i}".encode()) for i in range(5)]
    page.write(slots[0], b"updated")
    page.delete(slots[1])
    Verifier(vmem).run_pass()


def test_data_offsets_start_at_base():
    page, _ = make_page()
    slot = page.insert(b"x")
    offset, _ = page.slot_offset_for_compaction(slot)
    assert offset >= DATA_BASE
