"""Integration tests for VerifiableTable: CRUD + secure access methods."""

import pytest

from repro.catalog.schema import Column, Schema
from repro.catalog.types import IntegerType, TextType
from repro.errors import CatalogError, StorageError
from repro.storage.config import StorageConfig
from repro.storage.engine import StorageEngine
from repro.storage.table_store import VerifiableTable


def make_table(chain_columns=("count",), **config_kwargs):
    schema = Schema(
        columns=[
            Column("id", IntegerType()),
            Column("count", IntegerType()),
            Column("note", TextType()),
        ],
        primary_key="id",
        chain_columns=chain_columns,
    )
    engine = StorageEngine(StorageConfig(**config_kwargs))
    return VerifiableTable("quote", schema, engine), engine


@pytest.fixture
def table():
    return make_table()[0]


def test_insert_get(table):
    table.insert((1, 100, "first"))
    row, proof = table.get(1)
    assert row == (1, 100, "first")
    assert proof.found


def test_absence_proof(table):
    table.insert((1, 100, "a"))
    table.insert((5, 200, "b"))
    row, proof = table.get(3)
    assert row is None
    assert not proof.found
    assert proof.key == 1
    assert proof.next_key == 5


def test_absence_below_min_and_above_max(table):
    table.insert((10, 1, "x"))
    row, proof = table.get(5)
    assert row is None  # evidence: sentinel ⟨⊥, 10⟩
    row, proof = table.get(99)
    assert row is None  # evidence: ⟨10, ⊤⟩ (Example 4.3)


def test_empty_table_lookup(table):
    row, proof = table.get(1)
    assert row is None


def test_duplicate_pk_rejected(table):
    table.insert((1, 100, "a"))
    with pytest.raises(StorageError):
        table.insert((1, 200, "b"))


def test_delete(table):
    table.insert((1, 100, "a"))
    table.insert((2, 200, "b"))
    assert table.delete(1)
    assert not table.delete(1)
    row, _ = table.get(1)
    assert row is None
    assert table.row_count == 1


def test_delete_relinks_chain(table):
    for pk in (1, 2, 3):
        table.insert((pk, pk * 10, "r"))
    table.delete(2)
    row, proof = table.get(2)
    assert row is None
    assert proof.key == 1 and proof.next_key == 3


def test_update_data_fields(table):
    table.insert((1, 100, "old"))
    assert table.update(1, {"note": "new"})
    row, _ = table.get(1)
    assert row == (1, 100, "new")
    assert table.row_count == 1


def test_update_missing_returns_false(table):
    assert not table.update(42, {"note": "x"})


def test_update_chain_column_resplices(table):
    table.insert((1, 100, "a"))
    table.insert((2, 300, "b"))
    assert table.update(1, {"count": 200})
    assert table.scan("count", lo=150, hi=250) == [(1, 200, "a")]


def test_update_unknown_column(table):
    table.insert((1, 100, "a"))
    with pytest.raises(StorageError):
        table.update(1, {"ghost": 1})


def test_update_primary_key(table):
    table.insert((1, 100, "a"))
    assert table.update(1, {"id": 9})
    assert table.get(1)[0] is None
    assert table.get(9)[0] == (9, 100, "a")


def test_range_scan_primary(table):
    for pk in range(10):
        table.insert((pk, pk, "r"))
    assert [r[0] for r in table.scan(lo=3, hi=6)] == [3, 4, 5, 6]
    assert [r[0] for r in table.scan(lo=3, hi=6, include_lo=False)] == [4, 5, 6]
    assert [r[0] for r in table.scan(lo=3, hi=6, include_hi=False)] == [3, 4, 5]


def test_range_scan_unbounded(table):
    for pk in (5, 1, 9):
        table.insert((pk, pk, "r"))
    assert [r[0] for r in table.seq_scan()] == [1, 5, 9]
    assert [r[0] for r in table.scan(lo=5)] == [5, 9]
    assert [r[0] for r in table.scan(hi=5)] == [1, 5]


def test_range_scan_empty_result_is_proven(table):
    table.insert((1, 1, "a"))
    table.insert((10, 10, "b"))
    rows, proof = table.scan_with_proof(lo=3, hi=7)
    assert rows == []
    assert proof.records_read >= 1  # boundary evidence was still read


def test_secondary_chain_scan(table):
    table.insert((1, 100, "a"))
    table.insert((2, 100, "b"))  # duplicate secondary value
    table.insert((3, 500, "c"))
    table.insert((4, 600, "d"))
    rows = table.scan("count", lo=100, hi=500)
    assert [r[0] for r in rows] == [1, 2, 3]


def test_secondary_point_via_range(table):
    table.insert((1, 100, "a"))
    table.insert((2, 100, "b"))
    rows = table.scan("count", lo=100, hi=100)
    assert [r[0] for r in rows] == [1, 2]


def test_scan_on_unchained_column_rejected(table):
    with pytest.raises(StorageError):
        table.scan("note", lo="a", hi="z")


def test_chained_column_rejects_null():
    table, _ = make_table()
    with pytest.raises(CatalogError):
        table.insert((1, None, "a"))


def test_scan_proof_contents(table):
    for pk in range(1, 8):
        table.insert((pk, pk, "r"))
    rows, proof = table.scan_with_proof(lo=2, hi=5)
    assert proof.first_key <= 2
    assert proof.last_next_key > 5
    assert proof.links_checked >= len(rows) - 1


def test_interleaved_workload_and_verification():
    table, engine = make_table()
    for pk in range(50):
        table.insert((pk, pk % 5, f"note{pk}"))
    engine.verify_now()
    for pk in range(0, 50, 3):
        table.delete(pk)
    for pk in range(0, 50, 3):
        table.insert((pk, pk % 7, "reborn"))
    table.update(1, {"note": "x" * 200})  # likely relocation
    engine.verify_now()
    assert table.row_count == 50
    assert len(table.seq_scan()) == 50


def test_metadata_config_changes_rsws_volume():
    plain, engine_plain = make_table(verify_metadata=False)
    strict, engine_strict = make_table(verify_metadata=True)
    for pk in range(20):
        plain.insert((pk, pk, "r"))
        strict.insert((pk, pk, "r"))
    assert (
        engine_strict.vmem.rsws.total_operations()
        > engine_plain.vmem.rsws.total_operations()
    )


def test_baseline_mode_no_verification_cost():
    table, engine = make_table(verification=False)
    for pk in range(10):
        table.insert((pk, pk, "r"))
    assert engine.vmem.rsws.total_operations() == 0
    assert [r[0] for r in table.seq_scan()] == list(range(10))


def test_row_count_and_page_count(table):
    assert table.row_count == 0
    for pk in range(5):
        table.insert((pk, pk, "r"))
    assert table.row_count == 5
    assert table.page_count() >= 1


def test_many_rows_cross_page_chains():
    table, engine = make_table()
    n = 500
    for pk in range(n):
        table.insert((pk, n - pk, "payload-" + "x" * (pk % 37)))
    assert table.page_count() > 1
    assert [r[0] for r in table.scan(lo=100, hi=110)] == list(range(100, 111))
    # secondary chain is the reverse ordering
    rows = table.scan("count", lo=1, hi=10)
    assert sorted(r[1] for r in rows) == list(range(1, 11))
    engine.verify_now()
