"""Property-based tests for slotted pages and heap files."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.prf import PRF
from repro.errors import PageFullError
from repro.memory.rsws import RSWSGroup
from repro.memory.verified import VerifiedMemory
from repro.memory.verifier import Verifier
from repro.storage.config import StorageConfig
from repro.storage.engine import StorageEngine
from repro.storage.heap import HeapFile
from repro.storage.page import Page


def make_page(capacity=2048):
    vmem = VerifiedMemory(prf=PRF(b"q" * 32), rsws=RSWSGroup(n_partitions=1))
    vmem.register_page(0)
    return Page(0, vmem, capacity=capacity), vmem


_op = st.one_of(
    st.tuples(st.just("insert"), st.binary(min_size=1, max_size=120)),
    st.tuples(st.just("delete"), st.integers(0, 40)),
    st.tuples(st.just("write"), st.integers(0, 40), st.binary(min_size=1, max_size=120)),
    st.tuples(st.just("compact"),),
)


@settings(max_examples=60, deadline=None)
@given(ops=st.lists(_op, max_size=50))
def test_page_matches_model(ops):
    """A page behaves like a dict {slot: payload} under random ops,
    including compaction, and the memory checker stays consistent."""
    page, vmem = make_page()
    model: dict[int, bytes] = {}
    for op in ops:
        if op[0] == "insert":
            payload = op[1]
            if page.can_fit(len(payload)):
                slot = page.insert(payload)
                assert slot not in model
                model[slot] = payload
            else:
                with pytest.raises(PageFullError):
                    page.insert(payload)
        elif op[0] == "delete":
            slot = op[1]
            if slot in model:
                assert page.delete(slot) == model.pop(slot)
        elif op[0] == "write":
            slot, payload = op[1], op[2]
            if slot in model and page.fits_in_place(slot, len(payload)):
                page.write(slot, payload)
                model[slot] = payload
        else:
            page.compact()
            assert page.fragmentation == 0.0
    assert sorted(page.live_slots()) == sorted(model)
    for slot, payload in model.items():
        assert page.read(slot) == payload
    assert page.record_count == len(model)
    Verifier(vmem).run_pass()  # every mutation path stayed balanced


@settings(max_examples=30, deadline=None)
@given(
    payload_sizes=st.lists(st.integers(1, 300), min_size=1, max_size=120),
    delete_every=st.integers(2, 5),
)
def test_heap_round_trip_with_churn(payload_sizes, delete_every):
    engine = StorageEngine(StorageConfig(page_size=1024))
    heap = HeapFile(engine)
    rids = []
    for i, size in enumerate(payload_sizes):
        rids.append((heap.insert(bytes([i % 251]) * size), i, size))
    for index, (rid, i, _size) in enumerate(list(rids)):
        if index % delete_every == 0:
            heap.delete(rid)
            rids.remove((rid, i, _size))
    for rid, i, size in rids:
        assert heap.read(rid) == bytes([i % 251]) * size
    assert heap.record_count() == len(rids)
    engine.verify_now()


@settings(max_examples=20, deadline=None)
@given(seed_sizes=st.lists(st.integers(1, 200), min_size=5, max_size=60))
def test_eager_and_deferred_compaction_agree(seed_sizes):
    """Both reclamation policies preserve exactly the same contents."""
    results = {}
    for mode in ("eager", "deferred"):
        engine = StorageEngine(StorageConfig(page_size=1024, compaction=mode))
        heap = HeapFile(engine)
        rids = [
            heap.insert(bytes([i % 251]) * size)
            for i, size in enumerate(seed_sizes)
        ]
        for rid in rids[::2]:
            heap.delete(rid)
        engine.verify_now()
        survivors = sorted(
            heap.read(rid) for rid in rids[1::2]
        )
        results[mode] = survivors
    assert results["eager"] == results["deferred"]
