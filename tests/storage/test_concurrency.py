"""Concurrency stress tests for the storage layer.

Mutations serialize on the table lock; point reads are lock-free with
bounded retry (see repro.storage.locking). These tests hammer a table
from many threads and assert: no crashes, no false alarms, and a final
state that matches the applied operations.
"""

import random
import threading


from repro.catalog.schema import Column, Schema
from repro.catalog.types import IntegerType, TextType
from repro.storage.config import StorageConfig
from repro.storage.engine import StorageEngine
from repro.storage.table_store import VerifiableTable
from repro.workloads.runner import run_threaded


def make_table(**config_kwargs):
    schema = Schema(
        columns=[
            Column("pk", IntegerType()),
            Column("grp", IntegerType(), nullable=False),
            Column("note", TextType()),
        ],
        primary_key="pk",
        chain_columns=("grp",),
    )
    engine = StorageEngine(StorageConfig(**config_kwargs))
    return VerifiableTable("t", schema, engine), engine


def test_concurrent_readers_while_writing():
    """Lock-free gets stay correct under concurrent chain churn."""
    table, engine = make_table()
    for pk in range(0, 400, 2):  # even keys present
        table.insert((pk, pk % 7, "init"))
    stop = threading.Event()
    writer_errors = []

    def writer():
        rng = random.Random(1)
        try:
            for i in range(300):
                odd = rng.randrange(1, 400, 2)
                if table.indexes[0].search(odd) is None:
                    table.insert((odd, odd % 7, "w"))
                else:
                    table.delete(odd)
        except BaseException as exc:
            writer_errors.append(exc)
        finally:
            stop.set()

    def reader(index):
        rng = random.Random(100 + index)
        reads = 0
        while not stop.is_set():
            pk = rng.randrange(0, 400)
            row, proof = table.get(pk)
            if pk % 2 == 0:  # even keys are immutable in this test
                assert row == (pk, pk % 7, "init")
            reads += 1
        return reads

    writer_thread = threading.Thread(target=writer)
    writer_thread.start()
    _, total_reads = run_threaded(reader, 3)
    writer_thread.join()
    assert not writer_errors
    assert total_reads > 0
    engine.verify_now()  # no integrity damage from the concurrency


def test_concurrent_mutators_distinct_keyspaces():
    table, engine = make_table()

    def worker(index):
        base = index * 10_000
        for i in range(150):
            table.insert((base + i, i % 5, f"w{index}"))
        for i in range(0, 150, 3):
            table.delete(base + i)
        for i in range(1, 150, 3):
            table.update(base + i, {"note": "updated"})
        return 1

    run_threaded(worker, 4)
    assert table.row_count == 4 * 100
    engine.verify_now()
    # chains are intact end to end
    rows = table.seq_scan()
    assert len(rows) == 400
    for index in range(4):
        updated = [
            r
            for r in rows
            if index * 10_000 <= r[0] < index * 10_000 + 150
            and r[2] == "updated"
        ]
        assert len(updated) == 50


def test_concurrent_mutations_same_keyspace():
    """Interleaved insert/delete/update on overlapping keys stays sane."""
    table, engine = make_table()
    for pk in range(100):
        table.insert((pk, pk % 3, "base"))
    counter_lock = threading.Lock()
    net = [0]

    def worker(index):
        rng = random.Random(index)
        local = 0
        for _ in range(120):
            pk = rng.randrange(100, 160)
            action = rng.randrange(3)
            if action == 0:
                try:
                    table.insert((pk, pk % 3, "x"))
                    local += 1
                except Exception:
                    pass  # duplicate: another thread won
            elif action == 1:
                if table.delete(pk):
                    local -= 1
            else:
                table.update(pk, {"note": "y"})
        with counter_lock:
            net[0] += local
        return 1

    run_threaded(worker, 4)
    assert table.row_count == 100 + net[0]
    assert len(table.seq_scan()) == table.row_count
    engine.verify_now()


def test_concurrent_reads_with_background_verifier():
    table, engine = make_table()
    for pk in range(200):
        table.insert((pk, pk % 5, "v"))
    engine.verifier.start_background()

    def worker(index):
        rng = random.Random(index)
        for _ in range(200):
            pk = rng.randrange(250)
            row, _ = table.get(pk)
            assert (row is not None) == (pk < 200)
        return 1

    run_threaded(worker, 4)
    engine.verifier.stop_background()  # re-raises alarms: must be clean


def test_concurrent_scans_and_gets():
    table, engine = make_table()
    for pk in range(150):
        table.insert((pk, pk % 4, "v"))

    def worker(index):
        rng = random.Random(index)
        for _ in range(30):
            if rng.random() < 0.5:
                rows = table.scan(lo=rng.randrange(100), hi=149)
                assert rows == sorted(rows)
            else:
                table.get(rng.randrange(150))
        return 1

    run_threaded(worker, 4)
    engine.verify_now()


def test_parallel_verifier_during_workload():
    table, engine = make_table()
    for pk in range(300):
        table.insert((pk, pk % 5, "v"))
    done = threading.Event()

    def churn():
        for i in range(300, 450):
            table.insert((i, i % 5, "late"))
        done.set()

    thread = threading.Thread(target=churn)
    thread.start()
    while not done.is_set():
        engine.verifier.run_pass(workers=3)
    thread.join()
    engine.verifier.run_pass(workers=3)
    assert table.row_count == 450
