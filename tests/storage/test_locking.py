"""Tests for the thread-safe index wrapper."""

import random

from repro.catalog.types import BOTTOM
from repro.storage.locking import ThreadSafeIndex
from repro.workloads.runner import run_threaded


def test_delegation_roundtrip():
    index = ThreadSafeIndex()
    index.insert(BOTTOM, "sentinel")
    for i in range(0, 100, 2):
        index.insert(i, f"rid{i}")
    assert index.search(4) == "rid4"
    assert index.search(5) is None
    assert 4 in index
    assert index.search_le(5) == (4, "rid4")
    assert index.search_lt(4) == (2, "rid2")
    assert index.search_ge(5) == (6, "rid6")
    assert index.min_key() is BOTTOM
    assert index.max_key() == 98
    assert len(index) == 51
    assert index.delete(4)
    assert not index.delete(4)


def test_items_returns_snapshot_list():
    index = ThreadSafeIndex()
    for i in range(10):
        index.insert(i, i)
    items = index.items(lo=3, hi=7)
    assert isinstance(items, list)
    assert [k for k, _ in items] == [3, 4, 5, 6, 7]
    index.delete(5)  # the snapshot is unaffected
    assert [k for k, _ in items] == [3, 4, 5, 6, 7]


def test_concurrent_mutation_keeps_invariants():
    index = ThreadSafeIndex(order=4)

    def worker(thread_index):
        rng = random.Random(thread_index)
        base = thread_index * 10_000
        for i in range(400):
            key = base + rng.randrange(500)
            if rng.random() < 0.6:
                index.insert(key, key)
            else:
                index.delete(key)
        return 1

    run_threaded(worker, 4)
    index.check_invariants()


def test_concurrent_readers_and_writers_no_crash():
    index = ThreadSafeIndex(order=4)
    for i in range(500):
        index.insert(i, i)

    def worker(thread_index):
        rng = random.Random(thread_index)
        for _ in range(500):
            op = rng.randrange(4)
            key = rng.randrange(600)
            if op == 0:
                index.insert(key, key)
            elif op == 1:
                index.delete(key)
            elif op == 2:
                index.search_le(key)
            else:
                index.items(lo=key, hi=key + 10)
        return 1

    run_threaded(worker, 4)
    index.check_invariants()
