"""Unit tests for heap files."""

import pytest

from repro.errors import PageFullError, StorageError
from repro.storage.config import StorageConfig
from repro.storage.engine import StorageEngine
from repro.storage.heap import HeapFile, RecordId


def make_heap(**config_kwargs):
    engine = StorageEngine(StorageConfig(page_size=1024, **config_kwargs))
    return HeapFile(engine), engine


def test_insert_read_roundtrip():
    heap, _ = make_heap()
    rid = heap.insert(b"payload")
    assert heap.read(rid) == b"payload"
    assert isinstance(rid, RecordId)


def test_spills_to_new_pages():
    heap, _ = make_heap()
    rids = [heap.insert(b"x" * 200) for _ in range(20)]
    assert heap.page_count() > 1
    for rid in rids:
        assert heap.read(rid) == b"x" * 200
    assert heap.record_count() == 20


def test_free_list_reuse():
    heap, _ = make_heap()
    rids = [heap.insert(b"x" * 200) for _ in range(20)]
    pages_before = heap.page_count()
    for rid in rids[:8]:
        heap.delete(rid)
    for _ in range(8):
        heap.insert(b"y" * 200)
    assert heap.page_count() == pages_before


def test_record_too_big():
    heap, _ = make_heap()
    with pytest.raises(PageFullError):
        heap.insert(b"x" * 2000)


def test_delete_and_missing_read():
    heap, _ = make_heap()
    rid = heap.insert(b"x")
    assert heap.delete(rid) == b"x"
    with pytest.raises(StorageError):
        heap.read(rid)
    with pytest.raises(StorageError):
        heap.read(RecordId(999, 0))


def test_move_relocates():
    heap, _ = make_heap()
    rid = heap.insert(b"move-me")
    # fill the current page so the move lands elsewhere
    for _ in range(10):
        heap.insert(b"f" * 90)
    new_rid = heap.move(rid)
    assert heap.read(new_rid) == b"move-me"
    with pytest.raises(StorageError):
        heap.read(rid)


def test_write_and_fits_in_place():
    heap, _ = make_heap()
    rid = heap.insert(b"abc")
    assert heap.fits_in_place(rid, 100)
    heap.write(rid, b"defgh")
    assert heap.read(rid) == b"defgh"


def test_eager_compaction_relocates_on_delete():
    heap, engine = make_heap(compaction="eager")
    rids = [heap.insert(bytes([i]) * 64) for i in range(8)]
    page = heap.get_page(rids[0].page_id)
    heap.delete(rids[0])
    assert page.fragmentation == 0.0
    for rid in rids[1:]:
        assert heap.read(rid) == bytes([rid.slot]) * 64
    engine.verify_now()


def test_pages_registered_for_verification():
    heap, engine = make_heap()
    heap.insert(b"x")
    assert engine.vmem.registered_pages()


def test_unverified_mode_registers_nothing():
    heap, engine = make_heap(verification=False)
    heap.insert(b"x")
    assert engine.vmem.registered_pages() == []
    assert engine.verifier is None
