"""Direct tests for the compaction policy API."""

import pytest

from repro.catalog.schema import Column, Schema
from repro.catalog.types import IntegerType, TextType
from repro.storage.config import StorageConfig
from repro.storage.engine import StorageEngine
from repro.storage.table_store import VerifiableTable


def make_table(**config_kwargs):
    schema = Schema(
        columns=[Column("pk", IntegerType()), Column("v", TextType())],
        primary_key="pk",
    )
    engine = StorageEngine(StorageConfig(page_size=1024, **config_kwargs))
    return VerifiableTable("t", schema, engine), engine


def test_compact_all_reclaims(monkeypatch):
    table, engine = make_table(compaction="deferred", compact_threshold=0.05)
    for pk in range(60):
        table.insert((pk, "x" * 50))
    for pk in range(0, 60, 2):
        table.delete(pk)
    assert any(p.fragmentation > 0.05 for p in table.heap.pages())
    moved = table._compaction.compact_all()
    assert moved > 0
    assert all(p.fragmentation <= 0.05 for p in table.heap.pages())
    assert table._compaction.stats.pages_compacted > 0
    engine.verify_now()
    # contents intact
    assert [r[0] for r in table.seq_scan()] == list(range(1, 60, 2))


def test_scan_hook_noop_for_eager_mode():
    table, engine = make_table(compaction="eager")
    for pk in range(30):
        table.insert((pk, "x" * 40))
    stats_before = table._compaction.stats.pages_compacted
    engine.verify_now()
    assert table._compaction.stats.pages_compacted == stats_before


def test_scan_hook_skips_busy_table():
    import threading

    table, engine = make_table(compaction="deferred", compact_threshold=0.01)
    for pk in range(40):
        table.insert((pk, "x" * 60))
    for pk in range(0, 40, 2):
        table.delete(pk)
    # hold the table lock from ANOTHER thread (the RLock is reentrant, so
    # holding it from this thread would not make the hook's try-acquire
    # fail)
    acquired = threading.Event()
    release = threading.Event()

    def holder():
        with table._lock:
            acquired.set()
            release.wait(timeout=30)

    thread = threading.Thread(target=holder)
    thread.start()
    acquired.wait(timeout=30)
    try:
        engine.verify_now()
    finally:
        release.set()
        thread.join()
    assert table._compaction.stats.passes_skipped_busy > 0
    # the next unobstructed pass compacts
    engine.verify_now()
    assert table._compaction.stats.pages_compacted > 0


def test_none_mode_never_compacts():
    table, engine = make_table(compaction="none", compact_threshold=0.01)
    for pk in range(40):
        table.insert((pk, "x" * 60))
    for pk in range(0, 40, 2):
        table.delete(pk)
    engine.verify_now()
    assert table._compaction.stats.pages_compacted == 0
    assert any(p.fragmentation > 0.1 for p in table.heap.pages())


def test_run_threaded_propagates_errors():
    from repro.workloads.runner import run_threaded

    def worker(index):
        if index == 1:
            raise ValueError("boom")
        return 1

    with pytest.raises(ValueError):
        run_threaded(worker, 3)
