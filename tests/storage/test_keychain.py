"""Unit tests for chain layout and proof objects."""

import pytest

from repro.catalog.schema import Column, Schema
from repro.catalog.types import BOTTOM, TOP, IntegerType, TextType
from repro.errors import CatalogError, ProofError
from repro.storage.keychain import (
    DATA_RECORD,
    ChainLayout,
    PointProof,
    RangeProof,
)


@pytest.fixture
def layout():
    schema = Schema(
        columns=[
            Column("pk", IntegerType()),
            Column("grp", IntegerType(), nullable=False),
            Column("note", TextType()),
        ],
        primary_key="pk",
        chain_columns=("grp",),
    )
    return ChainLayout(schema)


# ----------------------------------------------------------------------
# layout
# ----------------------------------------------------------------------
def test_chain_keys(layout):
    row = (5, 9, "x")
    assert layout.chain_key(0, row) == 5
    assert layout.chain_key(1, row) == (9, 5)  # composite (value, pk)


def test_null_chain_key_rejected(layout):
    with pytest.raises(CatalogError):
        layout.chain_key(1, (5, None, "x"))


def test_bounds(layout):
    assert layout.low_bound(0, 7) == 7
    assert layout.high_bound(0, 7) == 7
    assert layout.low_bound(1, 7) == (7, BOTTOM)
    assert layout.high_bound(1, 7) == (7, TOP)
    assert layout.low_bound(1, 7) < (7, 0) < layout.high_bound(1, 7)


def test_chain_value_extraction(layout):
    assert layout.chain_value(0, 5) == 5
    assert layout.chain_value(1, (9, 5)) == 9
    assert layout.chain_value(1, BOTTOM) is BOTTOM


def test_stored_roundtrip(layout):
    row = (5, 9, "note")
    stored = layout.stored_from_row(row, [7, (11, 6)])
    assert not stored.is_sentinel
    assert stored.key(0) == 5 and stored.next_key(0) == 7
    assert stored.key(1) == (9, 5) and stored.next_key(1) == (11, 6)
    assert layout.row_from_stored(stored) == row
    flat = layout.to_tuple(stored)
    assert layout.from_tuple(flat) == stored


def test_sentinel_shape(layout):
    sentinel = layout.sentinel(1, first_key=(3, 1))
    assert sentinel.is_sentinel
    assert sentinel.sentinel_of == 1
    assert sentinel.key(1) is BOTTOM
    assert sentinel.next_key(1) == (3, 1)
    assert sentinel.key(0) is None
    with pytest.raises(ProofError):
        layout.row_from_stored(sentinel)


def test_from_tuple_arity_checked(layout):
    with pytest.raises(ProofError):
        layout.from_tuple((DATA_RECORD, 1, 2))


def test_data_column_indexes(layout):
    assert layout.data_column_indexes == [2]


# ----------------------------------------------------------------------
# proofs
# ----------------------------------------------------------------------
def test_point_proof_presence():
    PointProof(target=5, key=5, next_key=9, found=True).check()
    with pytest.raises(ProofError):
        PointProof(target=5, key=4, next_key=9, found=True).check()


def test_point_proof_absence():
    PointProof(target=5, key=4, next_key=9, found=False).check()
    PointProof(target=5, key=BOTTOM, next_key=TOP, found=False).check()
    with pytest.raises(ProofError):
        PointProof(target=5, key=4, next_key=5, found=False).check()
    with pytest.raises(ProofError):
        PointProof(target=5, key=5, next_key=9, found=False).check()


def test_range_proof_left():
    proof = RangeProof(low=10, high=20)
    proof.first_key = 10
    proof.check_left()
    proof.first_key = 11
    with pytest.raises(ProofError):
        proof.check_left()
    proof.first_key = None
    with pytest.raises(ProofError):
        proof.check_left()


def test_range_proof_right_inclusive():
    proof = RangeProof(low=10, high=20, right_inclusive=True)
    proof.last_next_key = 21
    proof.check_right()
    proof.last_next_key = TOP
    proof.check_right()
    proof.last_next_key = 20  # a record at 20 remains unread
    with pytest.raises(ProofError):
        proof.check_right()


def test_range_proof_right_exclusive():
    proof = RangeProof(low=10, high=20, right_inclusive=False)
    proof.last_next_key = 20  # the boundary itself suffices
    proof.check_right()
    proof.last_next_key = 19
    with pytest.raises(ProofError):
        proof.check_right()


def test_range_proof_links():
    proof = RangeProof(low=1, high=9)
    proof.check_link(5, 5)
    assert proof.links_checked == 1
    with pytest.raises(ProofError):
        proof.check_link(5, 6)
