"""Property-based tests for key-chain splice correctness.

The paper's core storage invariant: every table is threaded by (key,
nKey) chains — one per chain column — and after *any* sequence of
inserts, deletes and updates each chain must read, from the ⊥ sentinel,
as exactly the sorted live key set with each record's nKey naming its
immediate successor. Splices (insert links a record between neighbours,
delete re-links around it, update of a chained column does both) must
never leave a dangling, duplicated or orphaned link — including across
compaction, which physically moves records without touching the logical
chain.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.catalog.schema import Column, Schema
from repro.catalog.types import BOTTOM, TOP, IntegerType, TextType
from repro.core.incident import audit_table
from repro.memory.cells import make_addr
from repro.storage.config import StorageConfig
from repro.storage.engine import StorageEngine
from repro.storage.table_store import VerifiableTable


def make_table(**config_kwargs):
    schema = Schema(
        columns=[
            Column("pk", IntegerType()),
            Column("grp", IntegerType(), nullable=False),
            Column("note", TextType()),
        ],
        primary_key="pk",
        chain_columns=("grp",),
    )
    engine = StorageEngine(StorageConfig(page_size=1024, **config_kwargs))
    return VerifiableTable("t", schema, engine), engine


def chain_walk(table, chain_id):
    """Follow chain ``chain_id`` from ⊥ via raw reads; return the keys.

    This is the adversary's-eye view: no proofs, no verified layer, just
    the stored (key, nKey) links as they sit in untrusted memory. The
    walk terminates only if every link resolves; duplicates or cycles
    fail the test via the exactly-once assertion below.
    """
    layout = table.layout
    keyed = {}
    for page in table.heap.pages():
        for slot in page.live_slots():
            offset, _length = page.slot_offset_for_compaction(slot)
            cell = table.engine.memory.try_read(make_addr(page.page_id, offset))
            assert cell is not None, "live slot with no backing cell"
            stored = layout.from_tuple(table.codec.decode(cell.data))
            key = stored.chain_keys[chain_id]
            if key is not None:
                assert key not in keyed, f"duplicate chain key {key!r}"
                keyed[key] = stored
    walk = []
    cursor = BOTTOM
    steps = 0
    while True:
        assert cursor in keyed, f"dangling link to {cursor!r}"
        nxt = keyed[cursor].chain_nexts[chain_id]
        if nxt is TOP:
            break
        walk.append(nxt)
        cursor = nxt
        steps += 1
        assert steps <= len(keyed), "cycle in chain"
    assert len(walk) == len(keyed) - 1, "orphaned records off the chain"
    return walk


def assert_chains_exact(table, model):
    """Both chains spell out the sorted live key sets, link by link."""
    assert chain_walk(table, 0) == sorted(model)
    assert chain_walk(table, 1) == sorted(
        (row[1], row[0]) for row in model.values()
    )
    assert audit_table(table) == []


_op = st.one_of(
    st.tuples(
        st.just("insert"),
        st.integers(0, 30),
        st.integers(0, 4),
        st.text(max_size=8),
    ),
    st.tuples(st.just("delete"), st.integers(0, 30)),
    st.tuples(
        st.just("update"),
        st.integers(0, 30),
        st.integers(0, 4),
        st.text(max_size=8),
    ),
)


def apply_ops(table, model, ops):
    for op in ops:
        if op[0] == "insert":
            _, pk, grp, note = op
            if pk not in model:
                table.insert((pk, grp, note))
                model[pk] = (pk, grp, note)
        elif op[0] == "delete":
            table.delete(op[1])
            model.pop(op[1], None)
        else:
            _, pk, grp, note = op
            if table.update(pk, {"grp": grp, "note": note}):
                model[pk] = (pk, grp, note)


@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(ops=st.lists(_op, max_size=50))
@pytest.mark.parametrize(
    "config",
    [{}, {"compaction": "eager"}],
    ids=["default", "eager-compaction"],
)
def test_splices_preserve_exact_adjacency(config, ops):
    table, engine = make_table(**config)
    model: dict[int, tuple] = {}
    apply_ops(table, model, ops)
    assert_chains_exact(table, model)
    engine.verify_now()


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    ops=st.lists(_op, min_size=10, max_size=50),
    more_ops=st.lists(_op, max_size=20),
)
def test_compaction_relocates_without_breaking_links(ops, more_ops):
    """Deferred compaction moves records between passes; the logical
    chain must be identical before and after, and further splices on the
    compacted layout must still land exactly."""
    table, engine = make_table(compaction="deferred")
    model: dict[int, tuple] = {}
    apply_ops(table, model, ops)
    engine.verify_now()  # hosts the compaction hook: records may move
    assert_chains_exact(table, model)
    apply_ops(table, model, more_ops)  # splice into the compacted layout
    assert_chains_exact(table, model)
    engine.verify_now()


@settings(max_examples=25, deadline=None)
@given(
    keys=st.lists(st.integers(0, 200), min_size=2, max_size=40, unique=True),
    drop=st.data(),
)
def test_delete_splices_around_every_victim(keys, drop):
    """Deleting any subset re-links each survivor to its next survivor."""
    table, engine = make_table()
    for key in keys:
        table.insert((key, key % 5, None))
    victims = drop.draw(st.sets(st.sampled_from(keys)))
    for victim in victims:
        assert table.delete(victim)
    survivors = sorted(set(keys) - victims)
    assert chain_walk(table, 0) == survivors
    assert audit_table(table) == []
    engine.verify_now()
