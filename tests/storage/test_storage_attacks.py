"""Security tests at the storage layer.

Two attack surfaces exist above raw memory:

1. the *untrusted index* may lie about record locations — the access
   methods must catch this immediately through the ``(key, nKey)``
   evidence (:class:`ProofError`);
2. untrusted memory may be tampered under the access methods — caught at
   the next epoch close (:class:`VerificationFailure`), even though the
   access-method proof may transiently pass on tampered bytes.
"""

import pytest

from repro.catalog.schema import Column, Schema
from repro.catalog.types import IntegerType, TextType
from repro.errors import ProofError, VerificationFailure
from repro.memory.adversary import Adversary
from repro.memory.cells import make_addr
from repro.storage.config import StorageConfig
from repro.storage.engine import StorageEngine
from repro.storage.table_store import VerifiableTable


def make_table(**config_kwargs):
    schema = Schema(
        columns=[
            Column("id", IntegerType()),
            Column("count", IntegerType()),
            Column("note", TextType()),
        ],
        primary_key="id",
        chain_columns=("count",),
    )
    engine = StorageEngine(StorageConfig(**config_kwargs))
    table = VerifiableTable("t", schema, engine)
    for pk in range(0, 50, 5):  # keys 0,5,...,45
        table.insert((pk, pk * 2, f"note{pk}"))
    engine.verify_now()
    return table, engine


def _data_addr_of(table, pk):
    rid = table.indexes[0].search(pk)
    page = table.heap.get_page(rid.page_id)
    offset, _ = page.slot_offset_for_compaction(rid.slot)
    return make_addr(rid.page_id, offset)


# ----------------------------------------------------------------------
# lying-index attacks: caught online by access-method proofs
# ----------------------------------------------------------------------
def test_index_points_to_wrong_record():
    table, _ = make_table()
    # make key 10 resolve to key 20's record
    rid_20 = table.indexes[0].search(20)
    table.indexes[0].insert(10, rid_20)
    with pytest.raises(ProofError):
        table.get(10)


def test_index_fakes_absence():
    """Index hides key 10 by answering with key 5's record; the evidence
    ⟨5, 10⟩ fails to prove absence of 10 (nKey is not past the target)."""
    table, _ = make_table()
    rid_5 = table.indexes[0].search(5)
    table.indexes[0].delete(10)
    table.indexes[0].insert(10, rid_5)  # future le-searches hit 5's record
    with pytest.raises(ProofError):
        table.get(10)


def test_index_omits_range_records():
    table, _ = make_table()
    table.indexes[0].delete(20)  # hide one record from the scan
    with pytest.raises(ProofError):
        table.scan(lo=10, hi=30)


def test_index_fabricates_range_records():
    table, _ = make_table()
    # duplicate rid under a fake key inside the range
    rid = table.indexes[0].search(25)
    table.indexes[0].insert(22, rid)
    with pytest.raises(ProofError):
        table.scan(lo=20, hi=30)


def test_index_truncates_tail_of_scan():
    table, _ = make_table()
    for pk in (35, 40, 45):
        table.indexes[0].delete(pk)
    with pytest.raises(ProofError):
        table.scan(lo=30, hi=45)


def test_index_loses_sentinel():
    from repro.catalog.types import BOTTOM

    table, _ = make_table()
    table.indexes[0].delete(BOTTOM)
    for pk in range(0, 50, 5):
        table.indexes[0].delete(pk)
    with pytest.raises(ProofError):
        table.get(3)


# ----------------------------------------------------------------------
# memory tampering under the access methods: caught at epoch close
# ----------------------------------------------------------------------
def test_tampered_record_detected_at_epoch_close():
    table, engine = make_table()
    adversary = Adversary(engine.memory)
    addr = _data_addr_of(table, 10)
    cell = engine.memory.raw_read(addr)
    adversary.corrupt(addr, cell.data[:-1] + b"X")
    with pytest.raises(VerificationFailure):
        engine.verify_now()


def test_replayed_record_detected():
    table, engine = make_table()
    adversary = Adversary(engine.memory)
    addr = _data_addr_of(table, 10)
    adversary.observe(addr)
    table.update(10, {"note": "fresh value"})
    adversary.replay(addr)  # serve the stale note
    with pytest.raises(VerificationFailure):
        engine.verify_now()


def test_erased_record_detected_immediately_on_access():
    table, engine = make_table()
    adversary = Adversary(engine.memory)
    adversary.erase(_data_addr_of(table, 10))
    with pytest.raises(VerificationFailure):
        table.get(10)


def test_erased_record_detected_by_scan_even_without_access():
    table, engine = make_table()
    adversary = Adversary(engine.memory)
    adversary.erase(_data_addr_of(table, 10))
    with pytest.raises(VerificationFailure):
        engine.verify_now()


def test_unchecked_metadata_tampering_not_detected_but_harmless():
    """Section 4.3's accepted trade-off: with metadata excluded, forging
    the *header* is invisible — but it cannot change any query answer's
    evidence, it only lets the provider waste its own space."""
    table, engine = make_table(verify_metadata=False)
    page = next(iter(table.heap.pages()))
    from repro.storage.page import HEADER_OFFSET

    header_addr = make_addr(page.page_id, HEADER_OFFSET)
    engine.memory.raw_write(header_addr, b"\x00" * 12, 0, checked=False)
    engine.verify_now()  # no alarm: the header is outside the checked set
    # queries still verify fine
    row, proof = table.get(10)
    assert row == (10, 20, "note10")


def test_metadata_tampering_detected_when_verified():
    table, engine = make_table(verify_metadata=True)
    page = next(iter(table.heap.pages()))
    from repro.storage.page import HEADER_OFFSET

    header_addr = make_addr(page.page_id, HEADER_OFFSET)
    cell = engine.memory.raw_read(header_addr)
    engine.memory.raw_write(header_addr, b"\x00" * len(cell.data), cell.timestamp)
    with pytest.raises(VerificationFailure):
        engine.verify_now()


def test_checked_flag_flipping_is_detected():
    """Marking a record cell 'unchecked' to hide it from the scan leaves
    its WriteSet entry unmatched (see the Cell docstring)."""
    table, engine = make_table()
    addr = _data_addr_of(table, 10)
    cell = engine.memory.raw_read(addr)
    cell.checked = False
    with pytest.raises(VerificationFailure):
        engine.verify_now()
