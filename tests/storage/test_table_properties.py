"""Property-based tests: VerifiableTable behaves like a dict model.

Random CRUD sequences must leave the table, its key chains, its
indexes and the write-read consistent memory all agreeing with a plain
Python model — and every verification pass must close cleanly
(the endorsement property: honest execution never raises alarms).
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.catalog.schema import Column, Schema
from repro.catalog.types import IntegerType, TextType
from repro.storage.config import StorageConfig
from repro.storage.engine import StorageEngine
from repro.storage.table_store import VerifiableTable


def make_table(**config_kwargs):
    schema = Schema(
        columns=[
            Column("pk", IntegerType()),
            Column("grp", IntegerType(), nullable=False),
            Column("note", TextType()),
        ],
        primary_key="pk",
        chain_columns=("grp",),
    )
    engine = StorageEngine(StorageConfig(page_size=1024, **config_kwargs))
    return VerifiableTable("t", schema, engine), engine


_op = st.one_of(
    st.tuples(
        st.just("insert"),
        st.integers(0, 40),
        st.integers(0, 5),
        st.text(max_size=12),
    ),
    st.tuples(st.just("delete"), st.integers(0, 40)),
    st.tuples(
        st.just("update"),
        st.integers(0, 40),
        st.integers(0, 5),
        st.text(max_size=12),
    ),
)


@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(ops=st.lists(_op, max_size=60))
@pytest.mark.parametrize(
    "config",
    [
        {},
        {"verify_metadata": True},
        {"compaction": "eager"},
        {"verifier_mode": "touched"},
    ],
    ids=["default", "metadata", "eager", "touched"],
)
def test_random_crud_matches_model(config, ops):
    table, engine = make_table(**config)
    model: dict[int, tuple] = {}
    for op in ops:
        if op[0] == "insert":
            _, pk, grp, note = op
            if pk in model:
                with pytest.raises(Exception):
                    table.insert((pk, grp, note))
            else:
                table.insert((pk, grp, note))
                model[pk] = (pk, grp, note)
        elif op[0] == "delete":
            _, pk = op
            assert table.delete(pk) == (pk in model)
            model.pop(pk, None)
        else:
            _, pk, grp, note = op
            changed = table.update(pk, {"grp": grp, "note": note})
            assert changed == (pk in model)
            if changed:
                model[pk] = (pk, grp, note)

    # full contents agree, in primary-key order
    assert table.seq_scan() == sorted(model.values())
    assert table.row_count == len(model)
    # point lookups agree, including absence proofs
    for probe in range(0, 41, 3):
        row, proof = table.get(probe)
        assert row == model.get(probe)
        proof.check()
    # secondary-chain scans agree
    for lo, hi in ((0, 2), (1, 5), (3, 3)):
        expected = sorted(
            row for row in model.values() if lo <= row[1] <= hi
        )
        assert sorted(table.scan("grp", lo=lo, hi=hi)) == expected
    # every range over the primary chain agrees
    for lo, hi in ((0, 40), (5, 15), (39, 40)):
        expected = sorted(
            row for row in model.values() if lo <= row[0] <= hi
        )
        assert table.scan(lo=lo, hi=hi) == expected
    # honest execution: the epoch closes with no alarm
    engine.verify_now()


@settings(max_examples=25, deadline=None)
@given(
    keys=st.lists(
        st.integers(0, 1000), min_size=1, max_size=80, unique=True
    )
)
def test_chain_invariants_after_bulk_insert(keys):
    """The primary chain is exactly ⊥ → sorted(keys) → ⊤ after inserts."""
    table, engine = make_table()
    for key in keys:
        table.insert((key, key % 7, "x"))
    ordered = sorted(keys)
    layout = table.layout
    # walk the chain from the sentinel and compare
    from repro.catalog.types import BOTTOM, TOP

    chain = []
    _, rid = table.indexes[0].search_le(BOTTOM)
    stored = layout.from_tuple(table.codec.decode(table.heap.read(rid)))
    cursor = stored.next_key(0)
    while cursor is not TOP:
        rid = table.indexes[0].search(cursor)
        stored = layout.from_tuple(table.codec.decode(table.heap.read(rid)))
        chain.append(stored.key(0))
        cursor = stored.next_key(0)
    assert chain == ordered
    engine.verify_now()


@settings(max_examples=20, deadline=None)
@given(
    data=st.lists(
        st.tuples(st.integers(0, 200), st.integers(0, 10)),
        min_size=1,
        max_size=60,
        unique_by=lambda t: t[0],
    ),
    lo=st.integers(0, 10),
    hi=st.integers(0, 10),
    include_lo=st.booleans(),
    include_hi=st.booleans(),
)
def test_secondary_scan_bounds_property(data, lo, hi, include_lo, include_hi):
    """Inclusive/exclusive bounds behave exactly like a filtered model."""
    table, engine = make_table()
    for pk, grp in data:
        table.insert((pk, grp, None))

    def keep(value):
        if value < lo or (not include_lo and value == lo):
            return False
        if value > hi or (not include_hi and value == hi):
            return False
        return True

    expected = sorted((pk, grp, None) for pk, grp in data if keep(grp))
    rows = sorted(
        table.scan("grp", lo=lo, hi=hi, include_lo=include_lo, include_hi=include_hi)
    )
    assert rows == expected
    engine.verify_now()
