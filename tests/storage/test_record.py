"""Unit and property tests for the record codec."""

import datetime

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.catalog.types import BOTTOM, TOP
from repro.errors import StorageError
from repro.storage.record import RecordCodec


@pytest.fixture
def codec():
    return RecordCodec()


def test_roundtrip_all_types(codec):
    record = (
        None,
        42,
        -1,
        3.5,
        "héllo",
        True,
        False,
        datetime.date(2021, 6, 20),
        BOTTOM,
        TOP,
        (7, BOTTOM),
    )
    assert codec.decode(codec.encode(record)) == record


def test_empty_record(codec):
    assert codec.decode(codec.encode(())) == ()


def test_deterministic(codec):
    record = (1, "a", None)
    assert codec.encode(record) == codec.encode(record)


def test_distinct_values_distinct_bytes(codec):
    assert codec.encode((1,)) != codec.encode((2,))
    assert codec.encode(("1",)) != codec.encode((1,))
    assert codec.encode((True,)) != codec.encode((1,))
    assert codec.encode((None,)) != codec.encode((BOTTOM,))


def test_nested_tuples(codec):
    record = (((1, 2), (3, (4,))),)
    assert codec.decode(codec.encode(record)) == record


def test_sentinels_identity_after_decode(codec):
    decoded = codec.decode(codec.encode((BOTTOM, TOP)))
    assert decoded[0] is BOTTOM
    assert decoded[1] is TOP


def test_unencodable_value(codec):
    with pytest.raises(StorageError):
        codec.encode((object(),))
    with pytest.raises(StorageError):
        codec.encode(([1, 2],))


def test_malformed_payload_rejected(codec):
    good = codec.encode((1, "abc"))
    with pytest.raises(StorageError):
        codec.decode(good[:-1])  # truncated
    with pytest.raises(StorageError):
        codec.decode(good + b"\x00")  # trailing garbage
    with pytest.raises(StorageError):
        codec.decode(b"\xff\xff\xff\xff")  # absurd count


_scalar = st.one_of(
    st.none(),
    st.integers(min_value=-(2**63), max_value=2**63 - 1),
    st.floats(allow_nan=False),
    st.text(max_size=30),
    st.booleans(),
    st.dates(),
    st.just(BOTTOM),
    st.just(TOP),
)
_value = st.one_of(_scalar, st.tuples(_scalar, _scalar))


@given(record=st.lists(_value, max_size=12).map(tuple))
def test_roundtrip_property(record):
    codec = RecordCodec()
    assert codec.decode(codec.encode(record)) == record


@given(
    a=st.lists(_scalar, max_size=6).map(tuple),
    b=st.lists(_scalar, max_size=6).map(tuple),
)
def test_injective_property(a, b):
    codec = RecordCodec()
    if a != b:
        assert codec.encode(a) != codec.encode(b)
