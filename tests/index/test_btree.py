"""Unit and property tests for the B+-tree."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.catalog.types import BOTTOM, TOP
from repro.index.btree import BPlusTree


def build(pairs, order=8):
    tree = BPlusTree(order=order)
    for k, v in pairs:
        tree.insert(k, v)
    return tree


def test_empty_tree():
    tree = BPlusTree()
    assert tree.search(1) is None
    assert tree.search_le(1) is None
    assert tree.search_lt(1) is None
    assert tree.search_ge(1) is None
    assert list(tree.items()) == []
    assert len(tree) == 0
    assert tree.min_key() is None
    assert tree.max_key() is None


def test_insert_search():
    tree = build([(i, f"v{i}") for i in range(100)])
    for i in range(100):
        assert tree.search(i) == f"v{i}"
    assert tree.search(100) is None
    assert len(tree) == 100


def test_insert_overwrites():
    tree = build([(1, "a")])
    tree.insert(1, "b")
    assert tree.search(1) == "b"
    assert len(tree) == 1


def test_ordered_iteration():
    keys = random.Random(0).sample(range(1000), 200)
    tree = build([(k, k) for k in keys])
    assert [k for k, _ in tree.items()] == sorted(keys)


def test_range_iteration():
    tree = build([(i, i) for i in range(0, 100, 2)])
    assert [k for k, _ in tree.items(lo=10, hi=20)] == [10, 12, 14, 16, 18, 20]
    assert [k for k, _ in tree.items(lo=9, hi=13)] == [10, 12]


def test_search_le_lt_ge():
    tree = build([(i, i) for i in range(0, 100, 10)])
    assert tree.search_le(35) == (30, 30)
    assert tree.search_le(30) == (30, 30)
    assert tree.search_lt(30) == (20, 20)
    assert tree.search_ge(31) == (40, 40)
    assert tree.search_ge(30) == (30, 30)
    assert tree.search_le(-1) is None
    assert tree.search_ge(91) is None


def test_delete():
    tree = build([(i, i) for i in range(50)])
    for i in range(0, 50, 2):
        assert tree.delete(i)
    assert not tree.delete(0)
    assert len(tree) == 25
    assert [k for k, _ in tree.items()] == list(range(1, 50, 2))
    tree.check_invariants()


def test_delete_everything():
    tree = build([(i, i) for i in range(200)], order=4)
    order = random.Random(1).sample(range(200), 200)
    for k in order:
        assert tree.delete(k)
    assert len(tree) == 0
    assert list(tree.items()) == []
    tree.check_invariants()
    # tree remains usable
    tree.insert(5, "x")
    assert tree.search(5) == "x"


def test_min_max():
    tree = build([(i, i) for i in (5, 1, 9, 3)])
    assert tree.min_key() == 1
    assert tree.max_key() == 9


def test_sentinel_keys():
    tree = BPlusTree()
    tree.insert(BOTTOM, "sentinel")
    tree.insert(5, "five")
    tree.insert(7, "seven")
    assert tree.search_le(BOTTOM) == (BOTTOM, "sentinel")
    assert tree.search_lt(5) == (BOTTOM, "sentinel")
    assert tree.min_key() is BOTTOM


def test_composite_tuple_keys():
    tree = BPlusTree()
    tree.insert(BOTTOM, "s")
    for value, pk in [(10, 1), (10, 2), (20, 1)]:
        tree.insert((value, pk), (value, pk))
    assert tree.search_le((10, TOP)) == ((10, 2), (10, 2))
    assert tree.search_le((10, BOTTOM)) == (BOTTOM, "s")
    assert tree.search_ge((10, BOTTOM)) == ((10, 1), (10, 1))


def test_order_validation():
    with pytest.raises(ValueError):
        BPlusTree(order=2)


def test_contains():
    tree = build([(1, "a")])
    assert 1 in tree
    assert 2 not in tree


@settings(max_examples=50, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["insert", "delete"]),
            st.integers(min_value=0, max_value=300),
        ),
        max_size=400,
    )
)
def test_matches_dict_model(ops):
    """The tree behaves exactly like a sorted dict under random ops."""
    tree = BPlusTree(order=4)
    model: dict[int, int] = {}
    for op, key in ops:
        if op == "insert":
            tree.insert(key, key * 2)
            model[key] = key * 2
        else:
            assert tree.delete(key) == (key in model)
            model.pop(key, None)
    assert list(tree.items()) == sorted(model.items())
    tree.check_invariants()
    for probe in range(0, 301, 7):
        expected_le = max((k for k in model if k <= probe), default=None)
        got = tree.search_le(probe)
        assert (got[0] if got else None) == expected_le
        expected_ge = min((k for k in model if k >= probe), default=None)
        got = tree.search_ge(probe)
        assert (got[0] if got else None) == expected_ge
