"""Property: write → crash → recover ≡ never having crashed.

For any committed DML history, any group-commit batch size and any
record-cache configuration, an instance recovered from its write-ahead
log answers queries identically to a twin instance that executed the
same history and never died — and the recovered content digest equals
one recomputed from the twin's rows alone.

The "crash" is modeled as abandoning the instance right after its last
group commit (the acknowledged-durable boundary); the unsynced-tail
case — crashing with records still buffered — is covered
deterministically in ``test_wal_log.py`` because its expected state
diverges from the twin's by construction.
"""

from hypothesis import given, settings, strategies as st

from repro.core.config import VeriDBConfig
from repro.core.database import VeriDB
from repro.core.recovery import recover_from_wal
from repro.crypto.keys import KeyChain
from repro.crypto.mac import MessageAuthenticator
from repro.storage.config import StorageConfig
from repro.storage.record import RecordCodec
from repro.wal import content_sethash, row_element

SEED = 59

#: (op kind, key, value) — keys from a small space so updates/deletes
#: actually hit live rows
_ops = st.lists(
    st.tuples(
        st.sampled_from(["insert", "update", "delete"]),
        st.integers(min_value=0, max_value=15),
        st.integers(min_value=-1000, max_value=1000),
    ),
    min_size=1,
    max_size=40,
)


def _execute(db, ops, checkpoint_at):
    """Run the guarded op history; both twins take the same path."""
    live = set()
    for i, (kind, key, value) in enumerate(ops):
        if kind == "insert" and key not in live:
            db.sql(f"INSERT INTO t VALUES ({key}, {value})")
            live.add(key)
        elif kind == "update" and key in live:
            db.sql(f"UPDATE t SET v = {value} WHERE id = {key}")
        elif kind == "delete" and key in live:
            db.sql(f"DELETE FROM t WHERE id = {key}")
            live.discard(key)
        if i == checkpoint_at:
            db.checkpoint()


def _config(tmp_path, batch, cache, with_wal):
    storage = StorageConfig(cache_bytes=1 << 16 if cache else 0)
    return VeriDBConfig(
        key_seed=SEED,
        storage=storage,
        wal_dir=str(tmp_path / "wal") if with_wal else None,
        wal_group_commit=batch,
    )


@settings(deadline=None, max_examples=12)
@given(
    ops=_ops,
    batch=st.sampled_from([1, 7, 256]),
    cache=st.booleans(),
    data=st.data(),
)
def test_recovered_equals_never_crashed(tmp_path_factory, ops, batch, cache, data):
    tmp_path = tmp_path_factory.mktemp("wal_prop")
    checkpoint_at = data.draw(
        st.integers(min_value=-1, max_value=len(ops) - 1), label="checkpoint_at"
    )

    crashed = VeriDB(_config(tmp_path, batch, cache, with_wal=True))
    crashed.sql("CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)")
    _execute(crashed, ops, checkpoint_at)
    crashed.wal.commit()  # the durability boundary; then the power fails

    twin = VeriDB(_config(tmp_path, batch, cache, with_wal=False))
    twin.sql("CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)")
    _execute(twin, ops, checkpoint_at)

    recovered = recover_from_wal(str(tmp_path / "wal"), _config(tmp_path, batch, cache, True))
    query = "SELECT id, v FROM t ORDER BY id"
    assert recovered.sql(query).rows == twin.sql(query).rows
    assert (
        recovered.sql("SELECT COUNT(*) FROM t").rows
        == twin.sql("SELECT COUNT(*) FROM t").rows
    )

    # digest equality against an independent recomputation from the twin
    auth = MessageAuthenticator(KeyChain(seed=SEED).key_for("wal"))
    codec = RecordCodec()
    expected = content_sethash()
    for row in twin.sql(query).rows:
        expected.add(row_element(auth, "t", codec.encode(tuple(row))))
    assert recovered.wal.content_digest_hex() == expected.hex()

    # and the recovered instance passes a full verification pass
    recovered.verify_now()
