"""Kill-at-every-fault-site crash matrix.

For each fault site that can fire on the durable write path, one test
run: arm only that site, drive a scripted DML workload until the
injected crash (or the workload's end), abandon the instance — the
process is modeled as dead — and recover from the log with chaos
disarmed. The recovered state must match a shadow model of the
acknowledged statements, and the recovered content digest must match a
digest recomputed from the shadow alone.

Crash semantics are honest: the statement *in flight* at the crash may
or may not have reached the log (exactly like a statement interrupted
by power loss), so the shadow allows both outcomes; every statement
acknowledged before the crash must survive, and nothing else may
appear.

Two sites invert the expectation by design: ``wal.fsync_lost`` is a
*lying* host (the sync is acknowledged but the bytes are dropped), so
recovery must refuse rather than serve a state missing acknowledged
writes; ``wal.replay_abort`` fires during recovery itself, and a fresh
attempt must succeed because replay never mutates the log.

``REPRO_RECOVERY_SITES`` (comma-separated site names) reduces the
matrix — the CI recovery-smoke job runs the WAL sites only.
"""

import os

import pytest

from repro.core.config import VeriDBConfig
from repro.core.database import VeriDB
from repro.core.recovery import recover_from_wal
from repro.crypto.keys import KeyChain
from repro.crypto.mac import MessageAuthenticator
from repro.errors import RecoveryIntegrityError, StorageError, TransientFault, VeriDBError
from repro.faults import ChaosPlane, ChaosSchedule, scoped_fault_plane, sites
from repro.wal import content_sethash, row_element
from repro.storage.record import RecordCodec

#: sites the matrix kills at, with the documented recovery expectation
MATRIX = {
    sites.WAL_APPEND_TORN: "recover",
    sites.WAL_FSYNC_LOST: "refuse",
    sites.WAL_REPLAY_ABORT: "replay-retry",
    sites.SPLICE_INTERRUPTION: "recover",
    sites.COMPACTION_ABORT: "recover",
    sites.TORN_WRITE: "recover",
    sites.TRANSIENT_READ_ERROR: "recover",
    sites.EPC_SWAP_ERROR: "recover",
}

_selected = os.environ.get("REPRO_RECOVERY_SITES")
SITES = (
    [s for s in MATRIX if s in set(_selected.split(","))]
    if _selected
    else list(MATRIX)
)

SEED = 31


def build(tmp_path):
    cfg = VeriDBConfig(
        key_seed=SEED, wal_dir=str(tmp_path / "wal"), wal_group_commit=1
    )
    db = VeriDB(cfg)
    db.sql("CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)")
    return db, cfg


def base_load(db, shadow):
    for i in range(12):
        db.sql(f"INSERT INTO t VALUES ({i}, {i * 10})")
        shadow[i] = i * 10


#: (sql-template, shadow mutation) — replayed identically every run
def workload_steps(site):
    steps = [(f"INSERT INTO t VALUES ({100 + i}, {i})", ("ins", 100 + i, i)) for i in range(4)]
    if site != sites.TORN_WRITE:
        # updates/deletes read old rows back from (possibly mangled)
        # untrusted memory; under torn_write the workload stays
        # insert-only so the log carries only trusted bytes
        steps += [
            ("UPDATE t SET v = 777 WHERE id = 3", ("upd", 3, 777)),
            ("DELETE FROM t WHERE id = 5", ("del", 5, None)),
            ("INSERT INTO t VALUES (200, 42)", ("ins", 200, 42)),
            ("UPDATE t SET v = 888 WHERE id = 101", ("upd", 101, 888)),
        ]
    return steps


def apply_shadow(shadow, op):
    kind, key, value = op
    if kind == "ins":
        shadow[key] = value
    elif kind == "upd":
        shadow[key] = value
    elif kind == "del":
        del shadow[key]


def shadow_digest_hex(shadow, schema_rows_fn):
    """The content digest the log should bind, recomputed from the
    shadow model alone (same key derivation, independent bookkeeping)."""
    auth = MessageAuthenticator(KeyChain(seed=SEED).key_for("wal"))
    codec = RecordCodec()
    digest = content_sethash()
    for row in schema_rows_fn(shadow):
        digest.add(row_element(auth, "t", codec.encode(row)))
    return digest.hex()


def rows_of(shadow):
    return [(k, v) for k, v in sorted(shadow.items())]


@pytest.mark.parametrize("site", SITES)
def test_crash_at_site_then_recover(tmp_path, site):
    expectation = MATRIX[site]
    if expectation == "replay-retry":
        _run_replay_abort_case(tmp_path)
        return

    plane = ChaosPlane(
        ChaosSchedule(seed=7, rates={site: 1.0}, limit_per_site=2)
    )
    plane.disarm()
    shadow = {}
    crashed_op = None
    with scoped_fault_plane(plane):
        db, cfg = build(tmp_path)
        base_load(db, shadow)
        db.checkpoint()
        plane.arm()
        for sql, op in workload_steps(site):
            try:
                db.sql(sql)
            except VeriDBError:
                # the crash: the in-flight statement may or may not have
                # reached the log before the process died
                crashed_op = op
                break
            apply_shadow(shadow, op)
        plane.disarm()
    # the dead instance is abandoned here; recovery runs in a "new
    # process" with no chaos installed

    if expectation == "refuse":
        with pytest.raises(RecoveryIntegrityError) as caught:
            recover_from_wal(str(tmp_path / "wal"), cfg)
        assert caught.value.reason in ("truncated", "sequence", "mac-chain")
        return

    recovered = recover_from_wal(str(tmp_path / "wal"), cfg)
    got = recovered.sql("SELECT id, v FROM t ORDER BY id").rows
    candidates = [rows_of(shadow)]
    if crashed_op is not None:
        with_crashed = dict(shadow)
        apply_shadow(with_crashed, crashed_op)
        candidates.append(rows_of(with_crashed))
    assert got in candidates, (site, got, candidates)
    # the recovered digest equals one recomputed from the shadow alone
    matching = dict(candidates[candidates.index(got)])
    assert recovered.wal.content_digest_hex() == shadow_digest_hex(
        matching, rows_of
    )
    # and the recovered instance still verifies and serves writes
    recovered.verify_now()
    recovered.sql("INSERT INTO t VALUES (999, 1)")
    recovered.wal.commit()


def _run_replay_abort_case(tmp_path):
    """The site that fires during recovery: retry-safe by design."""
    shadow = {}
    db, cfg = build(tmp_path)
    base_load(db, shadow)
    db.checkpoint()
    plane = ChaosPlane(
        ChaosSchedule(
            seed=7, rates={sites.WAL_REPLAY_ABORT: 1.0}, limit_per_site=1
        )
    )
    with scoped_fault_plane(plane):
        with pytest.raises(TransientFault):
            recover_from_wal(str(tmp_path / "wal"), cfg)
        # same process retries while the plane is still installed: the
        # single scheduled firing is exhausted, the log was untouched
        recovered = recover_from_wal(str(tmp_path / "wal"), cfg)
    assert recovered.sql("SELECT id, v FROM t ORDER BY id").rows == rows_of(shadow)


def test_torn_append_poisons_the_log_object(tmp_path):
    """After a torn sync the dying process cannot keep writing as if
    nothing happened — every further append refuses."""
    plane = ChaosPlane(
        ChaosSchedule(seed=7, rates={sites.WAL_APPEND_TORN: 1.0}, limit_per_site=1)
    )
    plane.disarm()
    with scoped_fault_plane(plane):
        db, cfg = build(tmp_path)
        db.sql("INSERT INTO t VALUES (1, 10)")
        plane.arm()
        with pytest.raises(TransientFault):
            db.sql("INSERT INTO t VALUES (2, 20)")
        plane.disarm()
        with pytest.raises(StorageError, match="torn"):
            db.sql("INSERT INTO t VALUES (3, 30)")
    recovered = recover_from_wal(str(tmp_path / "wal"), cfg)
    assert recovered.sql("SELECT id FROM t ORDER BY id").rows == [(1,)]
