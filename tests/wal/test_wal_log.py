"""The write-ahead log writer: framing, chaining, group commit, segments.

Unit-level coverage of :mod:`repro.wal` — the frame codec round-trips,
the MAC chain binds position and content, group commit amortizes syncs,
segments roll at checkpoints, and a fresh instance refuses to squat on
an existing log. End-to-end write→crash→recover behaviour lives in
``test_crash_matrix.py`` / ``test_recovery_properties.py``; adversarial
mutations in ``test_tamper.py``.
"""

import pytest

from repro.core.config import VeriDBConfig
from repro.core.database import VeriDB
from repro.core.recovery import recover_from_wal
from repro.crypto.keys import KeyChain
from repro.crypto.mac import MessageAuthenticator
from repro.errors import RecoveryIntegrityError, StorageError
from repro.obs import MetricsRegistry
from repro.wal import (
    GENESIS_MAC,
    HEADER,
    INSERT,
    WalReader,
    chain_mac,
    encode_frame,
    parse_segment,
)
from repro.wal.records import encode_body, verify_chain, WalRecord


def auth():
    return MessageAuthenticator(KeyChain(seed=11).key_for("wal"))


def make_db(tmp_path, group_commit=1, registry=None, seed=11):
    cfg = VeriDBConfig(
        key_seed=seed,
        wal_dir=str(tmp_path / "wal"),
        wal_group_commit=group_commit,
    )
    db = VeriDB(cfg, registry=registry)
    db.sql("CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)")
    return db, cfg


# ----------------------------------------------------------------------
# frame codec and MAC chain
# ----------------------------------------------------------------------
def test_frame_round_trips_through_parse_segment():
    a = auth()
    body1 = encode_body({"version": 1, "nonce": "aa"})
    mac1 = chain_mac(a, GENESIS_MAC, 1, HEADER, body1)
    body2 = encode_body({"table": "t", "row": "00ff"})
    mac2 = chain_mac(a, mac1, 2, INSERT, body2)
    data = encode_frame(1, HEADER, body1, mac1) + encode_frame(2, INSERT, body2, mac2)
    records, stop = parse_segment(data)
    assert stop == len(data)
    assert [(r.seq, r.rtype) for r in records] == [(1, HEADER), (2, INSERT)]
    assert records[1].body == {"table": "t", "row": "00ff"}
    assert verify_chain(a, GENESIS_MAC, records[0])
    assert verify_chain(a, records[0].mac, records[1])


def test_parse_segment_stops_at_torn_frame_without_raising():
    a = auth()
    body = encode_body({"version": 1, "nonce": "aa"})
    frame = encode_frame(1, HEADER, body, chain_mac(a, GENESIS_MAC, 1, HEADER, body))
    records, stop = parse_segment(frame + frame[: len(frame) // 2])
    assert len(records) == 1 and stop == len(frame)


def test_chain_mac_binds_sequence_type_and_predecessor():
    a = auth()
    body = encode_body({"x": 1})
    mac = chain_mac(a, GENESIS_MAC, 5, INSERT, body)
    assert mac != chain_mac(a, GENESIS_MAC, 6, INSERT, body)  # position
    assert mac != chain_mac(a, GENESIS_MAC, 5, HEADER, body)  # type
    assert mac != chain_mac(a, b"\x01" * 32, 5, INSERT, body)  # predecessor


def test_verify_chain_rejects_a_flipped_body():
    a = auth()
    body = {"table": "t", "row": "00"}
    enc = encode_body(body)
    mac = chain_mac(a, GENESIS_MAC, 1, INSERT, enc)
    good = WalRecord(seq=1, rtype=INSERT, body=body, mac=mac, offset=0)
    bad = WalRecord(seq=1, rtype=INSERT, body={"table": "t", "row": "01"}, mac=mac, offset=0)
    assert verify_chain(a, GENESIS_MAC, good)
    assert not verify_chain(a, GENESIS_MAC, bad)


# ----------------------------------------------------------------------
# group commit
# ----------------------------------------------------------------------
def test_group_commit_amortizes_syncs(tmp_path):
    registry = MetricsRegistry()
    db, _ = make_db(tmp_path, group_commit=8, registry=registry)
    base_syncs = registry.counter("wal.syncs").value
    for i in range(24):
        db.sql(f"INSERT INTO t VALUES ({i}, {i})")
    db.wal.commit()
    appends = registry.counter("wal.appends").value
    syncs = registry.counter("wal.syncs").value - base_syncs
    assert appends >= 24
    # 24 inserts in batches of 8 → 3 auto-syncs (+1 for the tail commit
    # at most); far fewer durability boundaries than records
    assert syncs <= 4
    assert db.wal.pending_records == 0


def test_commit_is_a_noop_on_an_empty_buffer(tmp_path):
    registry = MetricsRegistry()
    db, _ = make_db(tmp_path, group_commit=4, registry=registry)
    db.wal.commit()
    before = registry.counter("wal.syncs").value
    db.wal.commit()
    assert registry.counter("wal.syncs").value == before


def test_unsynced_tail_is_not_durable(tmp_path):
    """The durability boundary is the sync: buffered appends die with
    the process, exactly like a classic WAL's unflushed tail."""
    db, cfg = make_db(tmp_path, group_commit=64)
    db.sql("INSERT INTO t VALUES (1, 10)")
    db.wal.commit()
    db.sql("INSERT INTO t VALUES (2, 20)")  # buffered, never synced
    assert db.wal.pending_records > 0
    # crash: the instance is abandoned without commit/close
    recovered = recover_from_wal(str(tmp_path / "wal"), cfg)
    assert recovered.sql("SELECT id FROM t ORDER BY id").rows == [(1,)]


# ----------------------------------------------------------------------
# segments, checkpoints, fresh-open refusal
# ----------------------------------------------------------------------
def test_checkpoint_rolls_the_segment(tmp_path):
    db, _ = make_db(tmp_path)
    wal_dir = tmp_path / "wal"
    assert len(list(wal_dir.glob("wal-*.log"))) == 1
    db.sql("INSERT INTO t VALUES (1, 10)")
    db.checkpoint()
    assert len(list(wal_dir.glob("wal-*.log"))) == 2
    db.checkpoint()
    assert len(list(wal_dir.glob("wal-*.log"))) == 3


def test_fresh_instance_refuses_an_existing_log(tmp_path):
    db, cfg = make_db(tmp_path)
    db.sql("INSERT INTO t VALUES (1, 10)")
    db.wal.commit()
    with pytest.raises(StorageError, match="recover_from_wal"):
        VeriDB(cfg)


def test_recovery_refuses_an_empty_directory(tmp_path):
    with pytest.raises(RecoveryIntegrityError) as caught:
        recover_from_wal(str(tmp_path / "nothing"), VeriDBConfig(key_seed=11))
    assert caught.value.reason == "no-log"


def test_wrong_enclave_identity_cannot_recover(tmp_path):
    db, _ = make_db(tmp_path, seed=11)
    db.sql("INSERT INTO t VALUES (1, 10)")
    db.wal.commit()
    with pytest.raises(RecoveryIntegrityError) as caught:
        recover_from_wal(str(tmp_path / "wal"), VeriDBConfig(key_seed=12))
    assert caught.value.reason == "unsealable"


# ----------------------------------------------------------------------
# end to end: write → crash → recover → keep writing → recover again
# ----------------------------------------------------------------------
def test_full_lifecycle_recover_write_recover(tmp_path):
    db, cfg = make_db(tmp_path, group_commit=4)
    for i in range(10):
        db.sql(f"INSERT INTO t VALUES ({i}, {i * 10})")
    db.sql("UPDATE t SET v = 999 WHERE id = 3")
    db.sql("DELETE FROM t WHERE id = 7")
    db.checkpoint()
    db.sql("INSERT INTO t VALUES (100, 1)")
    db.wal.commit()
    expected = db.sql("SELECT id, v FROM t ORDER BY id").rows

    second = recover_from_wal(str(tmp_path / "wal"), cfg)
    assert second.sql("SELECT id, v FROM t ORDER BY id").rows == expected
    second.sql("INSERT INTO t VALUES (101, 2)")
    second.wal.commit()

    third = recover_from_wal(str(tmp_path / "wal"), cfg)
    rows = third.sql("SELECT id, v FROM t ORDER BY id").rows
    assert rows == expected + [(101, 2)]
    # recovered instances stay verifiable
    third.verify_now()


def test_dropped_table_leaves_the_digest_cleanly(tmp_path):
    db, cfg = make_db(tmp_path)
    db.sql("CREATE TABLE gone (id INTEGER PRIMARY KEY, v INTEGER)")
    db.sql("INSERT INTO gone VALUES (1, 1)")
    db.sql("INSERT INTO t VALUES (1, 10)")
    db.catalog.drop("gone").store.destroy()
    db.checkpoint()
    recovered = recover_from_wal(str(tmp_path / "wal"), cfg)
    assert "gone" not in {n.lower() for n in recovered.catalog.table_names()}
    assert recovered.sql("SELECT v FROM t").rows == [(10,)]


def test_recovered_counter_leaps_past_the_log(tmp_path):
    """No client may ever see a recovered instance reuse a sequence
    number — the restored counter skips a full window ahead."""
    db, cfg = make_db(tmp_path)
    db.sql("INSERT INTO t VALUES (1, 10)")
    db.checkpoint()
    pre_crash = db.enclave.counter.read()
    recovered = recover_from_wal(str(tmp_path / "wal"), cfg)
    assert recovered.enclave.counter.read() > pre_crash + 1000


def test_reader_returns_verified_state_for_honest_log(tmp_path):
    db, cfg = make_db(tmp_path)
    db.sql("INSERT INTO t VALUES (1, 10)")
    db.checkpoint()
    state = WalReader(
        tmp_path / "wal",
        key=db.enclave.keychain.key_for("wal"),
        unseal=db.enclave.unseal,
    ).load()
    assert state.last_seq == len(state.records)
    assert state.row_counts == {"t": 1}
    assert state.checkpoint is not None
    assert state.checkpoint["tables"] == {"t": 1}
    assert state.nv == 1
