"""Adversarial log mutations: every one refused, none recovered silently.

The adversary owns the disk: it can truncate segments, splice in frames
from another run, reorder records, flip bits, or restore a whole backup
of the log state. What it cannot do is forge MACs under the enclave's
wal key, unseal/reseal the anchor, or roll back the hardware monotonic
counter (``NVCOUNTER`` stands in for SGX's replay-protected counter, so
the tamper helpers deliberately leave it alone).

Each test builds an honest log, applies exactly one mutation, and
asserts recovery refuses with a typed
:class:`~repro.errors.RecoveryIntegrityError` — the control test proves
the untampered twin of the same log recovers fine, so the refusals are
the mutation's doing, not the harness's.
"""

import shutil

import pytest

from repro.core.config import VeriDBConfig
from repro.core.database import VeriDB
from repro.core.recovery import recover_from_wal
from repro.errors import RecoveryIntegrityError
from repro.wal import INSERT, parse_segment
from repro.wal.log import ANCHOR_FILE
from repro.wal.records import encode_body

SEED = 47


def build_log(tmp_path, name="wal"):
    """An honest run: base load, checkpoint, more writes, commit, die."""
    cfg = VeriDBConfig(
        key_seed=SEED, wal_dir=str(tmp_path / name), wal_group_commit=1
    )
    db = VeriDB(cfg)
    db.sql("CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)")
    for i in range(8):
        db.sql(f"INSERT INTO t VALUES ({i}, {i * 10})")
    db.checkpoint()
    db.sql("INSERT INTO t VALUES (100, 1)")
    db.sql("INSERT INTO t VALUES (101, 2)")
    db.wal.commit()
    db.wal.close()
    return cfg, tmp_path / name


def frames_of(path):
    """(record, start, end) byte boundaries of every frame in a segment."""
    data = path.read_bytes()
    records, stop = parse_segment(data)
    assert stop == len(data), "tamper helpers need a clean segment"
    out = []
    for i, record in enumerate(records):
        end = records[i + 1].offset if i + 1 < len(records) else stop
        out.append((record, record.offset, end))
    return out


def refuse(wal_dir, cfg):
    with pytest.raises(RecoveryIntegrityError) as caught:
        recover_from_wal(str(wal_dir), cfg)
    return caught.value


def test_untampered_control(tmp_path):
    cfg, wal_dir = build_log(tmp_path)
    recovered = recover_from_wal(str(wal_dir), cfg)
    assert recovered.sql("SELECT COUNT(*) FROM t").rows == [(10,)]


def test_truncate_tail_below_anchor_is_refused(tmp_path):
    """Chopping acknowledged records off the end: the sealed anchor
    proves how far the log had synced, so this is not a torn tail."""
    cfg, wal_dir = build_log(tmp_path)
    last = sorted(wal_dir.glob("wal-*.log"))[-1]
    data = last.read_bytes()
    last.write_bytes(data[: len(data) - 7])
    assert refuse(wal_dir, cfg).reason == "truncated"


def test_splice_from_another_run_is_refused(tmp_path):
    """A frame from a second log under the *same seeded key*: the
    per-run HEADER nonce makes the chains disjoint, so the transplant
    breaks the MAC chain even though the key matches."""
    cfg, wal_dir = build_log(tmp_path, "wal_a")
    _, other_dir = build_log(tmp_path, "wal_b")
    seg = sorted(wal_dir.glob("wal-*.log"))[0]
    other_seg = sorted(other_dir.glob("wal-*.log"))[0]
    ours, theirs = frames_of(seg), frames_of(other_seg)
    # transplant the frame at the same position (an INSERT, seq 3)
    (rec, start, end) = ours[2]
    (orec, ostart, oend) = theirs[2]
    assert rec.seq == orec.seq and rec.body == orec.body
    data = seg.read_bytes()
    seg.write_bytes(
        data[:start] + other_seg.read_bytes()[ostart:oend] + data[end:]
    )
    assert refuse(wal_dir, cfg).reason == "mac-chain"


def test_reordered_records_are_refused(tmp_path):
    cfg, wal_dir = build_log(tmp_path)
    seg = sorted(wal_dir.glob("wal-*.log"))[0]
    frames = frames_of(seg)
    (_, s3, e3), (_, s4, e4) = frames[3], frames[4]
    data = seg.read_bytes()
    seg.write_bytes(data[:s3] + data[s4:e4] + data[s3:e3] + data[e4:])
    assert refuse(wal_dir, cfg).reason in ("sequence", "mac-chain")


def test_single_bit_flip_is_refused(tmp_path):
    """One hex digit of one logged row changes — still perfectly valid
    JSON, still a well-formed frame, still refused."""
    cfg, wal_dir = build_log(tmp_path)
    seg = sorted(wal_dir.glob("wal-*.log"))[0]
    target = next(
        (r, s, e) for (r, s, e) in frames_of(seg) if r.rtype == INSERT
    )
    record, start, end = target
    body = dict(record.body)
    row = body["row"]
    flipped = ("0" if row[0] != "0" else "1") + row[1:]
    body["row"] = flipped
    new_body = encode_body(body)
    old_body = encode_body(record.body)
    assert len(new_body) == len(old_body)
    data = seg.read_bytes()
    body_start = start + 13  # [len u32][seq u64][type u8]
    seg.write_bytes(
        data[:body_start] + new_body + data[body_start + len(old_body):]
    )
    assert refuse(wal_dir, cfg).reason == "mac-chain"


def test_stale_checkpoint_swap_is_refused(tmp_path):
    """Restore a full self-consistent backup (segments + anchor) from
    before the last checkpoint. Chain and anchor all verify — only the
    hardware counter, which the adversary cannot roll back, gives the
    rollback away."""
    cfg = VeriDBConfig(
        key_seed=SEED, wal_dir=str(tmp_path / "wal"), wal_group_commit=1
    )
    wal_dir = tmp_path / "wal"
    db = VeriDB(cfg)
    db.sql("CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)")
    db.sql("INSERT INTO t VALUES (1, 10)")
    db.checkpoint()  # checkpoint 1 — the adversary's backup point
    backup = tmp_path / "backup"
    backup.mkdir()
    for path in list(wal_dir.glob("wal-*.log")) + [wal_dir / ANCHOR_FILE]:
        shutil.copy2(path, backup / path.name)
    db.sql("INSERT INTO t VALUES (2, 20)")
    db.sql("UPDATE t SET v = 999 WHERE id = 1")
    db.checkpoint()  # checkpoint 2 bumps the hardware counter
    db.wal.close()
    # the rollback: replace log + anchor with the backup, leave NVCOUNTER
    for path in wal_dir.glob("wal-*.log"):
        path.unlink()
    for path in backup.iterdir():
        shutil.copy2(path, wal_dir / path.name)
    refusal = refuse(wal_dir, cfg)
    assert refusal.reason == "stale-checkpoint"
    assert "rolled back" in str(refusal)


def test_tampered_anchor_is_refused(tmp_path):
    cfg, wal_dir = build_log(tmp_path)
    anchor = wal_dir / ANCHOR_FILE
    blob = bytearray(anchor.read_bytes())
    blob[len(blob) // 2] ^= 0x01
    anchor.write_bytes(bytes(blob))
    assert refuse(wal_dir, cfg).reason == "unsealable"


def test_deleted_anchor_is_refused(tmp_path):
    """Deleting the anchor does not soften recovery into best-effort."""
    cfg, wal_dir = build_log(tmp_path)
    (wal_dir / ANCHOR_FILE).unlink()
    assert refuse(wal_dir, cfg).reason == "anchor-missing"


def test_refusal_is_typed_and_never_partial(tmp_path):
    """A refused recovery yields no database object at all, and the
    evidence on disk is untouched for audit."""
    cfg, wal_dir = build_log(tmp_path)
    last = sorted(wal_dir.glob("wal-*.log"))[-1]
    before = last.read_bytes()
    last.write_bytes(before[:-5])
    snapshot = {p.name: p.read_bytes() for p in sorted(wal_dir.iterdir())}
    with pytest.raises(RecoveryIntegrityError):
        recover_from_wal(str(wal_dir), cfg)
    after = {p.name: p.read_bytes() for p in sorted(wal_dir.iterdir())}
    assert after == snapshot
