"""Shared test helpers and fixtures.

``poll_until`` is the suite's one condition-synchronization primitive:
tests that wait on a background thread (the verifier daemon, a crashing
pass) poll the observable condition with a deadline instead of sleeping
a fixed interval — fixed sleeps are simultaneously too slow on fast
machines and flaky on loaded ones.
"""

import time

import pytest


def poll_until(predicate, timeout=5.0, interval=0.005):
    """Poll ``predicate`` until truthy or ``timeout`` seconds elapse.

    Returns the final value of ``predicate()`` so callers can simply
    ``assert poll_until(...)`` and get a clean assertion failure (with
    the predicate still false) instead of a hang or a race.
    """
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


@pytest.fixture(name="poll_until")
def poll_until_fixture():
    """The polling helper as a fixture, for tests that prefer injection."""
    return poll_until
