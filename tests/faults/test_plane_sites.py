"""Every injection site fires, and every firing is handled as designed.

For each named site in :mod:`repro.faults.sites` there is one test that
arms only that site, triggers it deterministically (rate 1.0, bounded
firings) and asserts the documented handling: clean typed abort and safe
retry for the transient sites, detection by verification or
authentication for the corruption sites.
"""

import pytest

from repro.core.database import VeriDB
from repro.core.config import VeriDBConfig
from repro.crypto.prf import PRF
from repro.errors import (
    IntegrityError,
    PermanentFault,
    TransientFault,
    VerificationFailure,
)
from repro.faults import (
    NULL_FAULT_PLANE,
    ChaosPlane,
    ChaosSchedule,
    default_fault_plane,
    scoped_fault_plane,
    sites,
)
from repro.memory.cells import make_addr
from repro.memory.untrusted import UntrustedMemory
from repro.memory.verified import VerifiedMemory
from repro.memory.verifier import Verifier
from repro.obs import MetricsRegistry, scoped_registry
from repro.sgx.enclave import Enclave
from repro.sgx.epc import EnclavePageCache


def plane_for(*site_names, rate=1.0, limit=1, permanent=(), seed=99):
    return ChaosPlane(
        ChaosSchedule(
            seed=seed,
            rates={s: rate for s in site_names},
            permanent=permanent,
            limit_per_site=limit,
        )
    )


# ----------------------------------------------------------------------
# the plane itself
# ----------------------------------------------------------------------
def test_null_plane_is_default_and_inert():
    assert default_fault_plane() is NULL_FAULT_PLANE
    assert not NULL_FAULT_PLANE.enabled
    NULL_FAULT_PLANE.check("any.site")
    assert NULL_FAULT_PLANE.mangle("any.site", b"abc") == b"abc"
    assert NULL_FAULT_PLANE.drop_one("any.site", [1, 2]) == [1, 2]
    assert NULL_FAULT_PLANE.log == ()
    assert NULL_FAULT_PLANE.fired_count() == 0


def test_scoped_plane_installs_and_restores():
    plane = plane_for("s")
    with scoped_fault_plane(plane) as installed:
        assert installed is plane
        assert default_fault_plane() is plane
    assert default_fault_plane() is NULL_FAULT_PLANE


def test_disarmed_checks_neither_count_nor_fire():
    plane = plane_for("s", limit=None)
    plane.disarm()
    for _ in range(5):
        plane.check("s")
    assert plane.checks_seen("s") == 0
    assert plane.fired_count("s") == 0
    plane.arm()
    with pytest.raises(TransientFault):
        plane.check("s")
    assert plane.checks_seen("s") == 1


def test_fault_log_records_site_ordinal_action():
    plane = plane_for("a", "b", limit=None)
    with pytest.raises(TransientFault):
        plane.check("a")
    assert plane.mangle("b", b"xyz") != b"xyz"
    log = plane.log
    assert [(r.site, r.action) for r in log] == [("a", "raise"), ("b", "mangle")]
    assert plane.fired_count() == 2
    assert plane.fired_count("a") == 1


def test_fault_counters_export_through_obs():
    with scoped_registry(MetricsRegistry()) as reg:
        plane = ChaosPlane(ChaosSchedule(seed=1, rates={"layer.x": 1.0}))
        with pytest.raises(TransientFault):
            plane.check("layer.x")
        snap = reg.snapshot()
        assert snap["faults.injected"]["value"] == 1
        assert snap["faults.layer.x"]["value"] == 1


def test_permanent_site_raises_permanent_fault():
    plane = plane_for("s", permanent=("s",))
    with pytest.raises(PermanentFault):
        plane.check("s")


def test_mangle_flips_exactly_one_byte():
    plane = plane_for("m", limit=None)
    data = bytes(range(16))
    mangled = plane.mangle("m", data)
    assert len(mangled) == len(data)
    assert sum(a != b for a, b in zip(mangled, data)) == 1


def test_drop_one_removes_exactly_one_element():
    plane = plane_for("d", limit=None)
    items = list(range(10))
    dropped = plane.drop_one("d", items)
    assert len(dropped) == 9
    assert set(dropped) < set(items)
    assert items == list(range(10))  # input untouched


# ----------------------------------------------------------------------
# SGX-layer sites
# ----------------------------------------------------------------------
def test_ecall_abort_fires_then_identical_retry_succeeds():
    plane = plane_for(sites.ECALL_ABORT)
    enclave = Enclave(faults=plane)
    enclave.register_ecall("echo", lambda x: x)
    with pytest.raises(TransientFault):
        enclave.ecall("echo", 1)
    assert enclave.ecall("echo", 1) == 1
    assert plane.fired_count(sites.ECALL_ABORT) == 1


def test_epc_swap_error_leaves_accounting_unchanged():
    plane = plane_for(sites.EPC_SWAP_ERROR)
    epc = EnclavePageCache(capacity_bytes=1024, faults=plane)
    epc.allocate("a", 800)
    epc.allocate("b", 800)  # evicts "a"
    assert epc.swapped_bytes == 800
    with pytest.raises(TransientFault):
        epc.touch("a")  # swap-in fails
    assert epc.swapped_bytes == 800  # nothing moved on the failed swap
    epc.touch("a")  # retry succeeds
    assert epc.swapped_bytes == 800  # now "b" is the swapped one
    assert epc.resident_bytes == 800


def test_seal_corruption_detected_at_unseal():
    plane = plane_for(sites.SEAL_CORRUPTION)
    enclave = Enclave(faults=plane)
    blob = enclave.seal(b"enclave state")
    with pytest.raises(IntegrityError):
        enclave.unseal(blob)  # never silently decrypts garbage
    assert enclave.unseal(enclave.seal(b"enclave state")) == b"enclave state"


# ----------------------------------------------------------------------
# memory-layer sites
# ----------------------------------------------------------------------
def make_vmem(plane, **kwargs):
    memory = UntrustedMemory(faults=plane)
    vmem = VerifiedMemory(memory=memory, prf=PRF(b"f" * 32), **kwargs)
    vmem.register_page(0)
    for i in range(4):
        vmem.alloc(make_addr(0, i * 64), f"cell-{i}".encode())
    return vmem


def test_transient_read_error_absorbed_by_verified_layer():
    with scoped_registry(MetricsRegistry()) as reg:
        plane = plane_for(sites.TRANSIENT_READ_ERROR)
        plane.disarm()
        vmem = make_vmem(plane)
        plane.arm()
        assert vmem.read(make_addr(0, 0)) == b"cell-0"  # retried in place
        snap = reg.snapshot()
        assert snap["memory.transient_read_retries"]["value"] == 1
        assert plane.fired_count(sites.TRANSIENT_READ_ERROR) == 1


def test_transient_read_errors_exhaust_to_typed_fault():
    plane = plane_for(sites.TRANSIENT_READ_ERROR, limit=None)
    plane.disarm()
    vmem = make_vmem(plane)
    plane.arm()
    # rate 1.0 unbounded: all three in-place attempts fail
    with pytest.raises(TransientFault):
        vmem.read(make_addr(0, 0))


def test_torn_write_detected_by_next_pass():
    plane = plane_for(sites.TORN_WRITE)
    plane.disarm()
    vmem = make_vmem(plane)
    verifier = Verifier(vmem)
    verifier.run_pass()
    plane.arm()
    vmem.write(make_addr(0, 1 * 64), b"new value")  # the store tears
    plane.disarm()
    with pytest.raises(VerificationFailure):
        verifier.run_pass()
    assert plane.fired_count(sites.TORN_WRITE) == 1


def test_directory_drop_alarms_at_epoch_close():
    plane = plane_for(sites.DIRECTORY_DROP)
    plane.disarm()
    vmem = make_vmem(plane)
    verifier = Verifier(vmem)
    verifier.run_pass()
    plane.arm()
    with pytest.raises(VerificationFailure):
        verifier.run_pass()  # the scan's directory listing omits a cell


# ----------------------------------------------------------------------
# verifier-layer sites
# ----------------------------------------------------------------------
def test_verifier_crash_before_end_pass_keeps_epoch():
    plane = plane_for(sites.VERIFIER_CRASH_BEFORE_END_PASS)
    plane.disarm()
    vmem = make_vmem(plane)
    verifier = Verifier(vmem, faults=plane)
    plane.arm()
    epoch_before = vmem.epoch
    with pytest.raises(TransientFault):
        verifier.run_pass()
    assert vmem.epoch == epoch_before  # the epoch never advanced


def test_verifier_crash_after_end_pass_completes_the_pass():
    plane = plane_for(sites.VERIFIER_CRASH_AFTER_END_PASS)
    plane.disarm()
    vmem = make_vmem(plane)
    verifier = Verifier(vmem, faults=plane)
    plane.arm()
    epoch_before = vmem.epoch
    with pytest.raises(TransientFault):
        verifier.run_pass()
    plane.disarm()
    assert vmem.epoch == epoch_before + 1  # pass completed before the crash
    verifier.run_pass()  # and the next pass is clean


def test_crash_after_end_pass_never_masks_an_alarm():
    # With tampering in place, the alarm must win over the crash site:
    # the site is placed after the consistency check, so a pass that
    # should alarm still alarms even when the crash is scheduled.
    plane = plane_for(sites.VERIFIER_CRASH_AFTER_END_PASS, limit=None)
    plane.disarm()
    vmem = make_vmem(plane)
    verifier = Verifier(vmem, faults=plane)
    verifier.run_pass()
    addr = make_addr(0, 0)
    cell = vmem.memory.raw_read(addr)
    vmem.memory.raw_write(addr, b"tampered!", cell.timestamp)
    plane.arm()
    with pytest.raises(VerificationFailure):
        verifier.run_pass()


# ----------------------------------------------------------------------
# storage-layer sites
# ----------------------------------------------------------------------
def _chaos_db(plane):
    with scoped_fault_plane(plane):
        db = VeriDB(VeriDBConfig(key_seed=7))
        db.sql("CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)")
        for i in range(8):
            db.sql(f"INSERT INTO t VALUES ({i}, {i * 10})")
    return db


def test_splice_interruption_aborts_cleanly_and_retry_succeeds():
    plane = plane_for(sites.SPLICE_INTERRUPTION)
    plane.disarm()
    db = _chaos_db(plane)
    plane.arm()
    with pytest.raises(TransientFault):
        db.sql("INSERT INTO t VALUES (100, 1000)")
    # no partial splice: the statement retries cleanly and the chain holds
    db.sql("INSERT INTO t VALUES (100, 1000)")
    plane.disarm()
    rows = db.sql("SELECT id FROM t ORDER BY id").rows
    assert [r[0] for r in rows] == [0, 1, 2, 3, 4, 5, 6, 7, 100]
    db.verify_now()


def test_compaction_abort_is_absorbed_and_counted():
    from repro.storage.config import StorageConfig

    plane = plane_for(sites.COMPACTION_ABORT)
    plane.disarm()
    with scoped_fault_plane(plane):
        db = VeriDB(
            VeriDBConfig(
                key_seed=7, storage=StorageConfig(compaction="deferred")
            )
        )
        db.sql("CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)")
        for i in range(30):
            db.sql(f"INSERT INTO t VALUES ({i}, '{'x' * 50}')")
        for i in range(0, 30, 2):
            db.sql(f"DELETE FROM t WHERE id = {i}")
    plane.arm()
    db.verify_now()  # hosts the compaction hook; the abort is absorbed
    plane.disarm()
    table = db.table("t")
    assert table._compaction.stats.aborts == 1
    db.verify_now()  # next pass compacts normally
    assert [r[0] for r in db.sql("SELECT id FROM t ORDER BY id").rows] == list(
        range(1, 30, 2)
    )


def test_cache_evict_storm_flushes_and_never_surfaces():
    from repro.memory.cache import RecordCache
    from repro.storage.config import StorageConfig

    plane = plane_for(sites.CACHE_EVICT_STORM)
    plane.disarm()
    registry = MetricsRegistry()
    cache = RecordCache(64 * 1024, registry=registry, faults=plane)
    cache.admit(1, b"warm")
    cache.admit(2, b"warm")
    assert cache.lookup(1) == b"warm"
    plane.arm()
    # the firing is absorbed in place: the whole cache is invalidated,
    # the admit itself still lands, and nothing propagates to the caller
    cache.admit(3, b"new")
    plane.disarm()
    assert cache.lookup(1) is None
    assert cache.lookup(2) is None
    assert cache.lookup(3) == b"new"
    assert plane.fired_count() == 1
    snap = registry.snapshot()
    assert snap["memory.cache_invalidations"]["value"] >= 2


def test_cache_evict_storm_end_to_end_correctness():
    """A storm mid-workload costs latency only: results and the epoch
    close are untouched."""
    from repro.storage.config import StorageConfig

    plane = plane_for(sites.CACHE_EVICT_STORM, limit=3)
    plane.disarm()
    with scoped_fault_plane(plane):
        db = VeriDB(
            VeriDBConfig(
                key_seed=7, storage=StorageConfig(cache_bytes=1 << 20)
            )
        )
        db.sql("CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)")
        for i in range(20):
            db.sql(f"INSERT INTO t VALUES ({i}, {i * 10})")
    # cold start: the insert phase warmed the cache through the
    # predecessor searches, and warm hits never reach the admit site
    db.storage.cache.flush()
    plane.arm()
    for i in range(20):
        rows = db.sql(f"SELECT v FROM t WHERE id = {i}").rows
        assert rows == [(i * 10,)]
    plane.disarm()
    assert plane.fired_count() == 3
    db.verify_now()
