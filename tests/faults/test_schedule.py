"""ChaosSchedule: the replay contract and parameter validation."""

import pytest

from repro.faults import ChaosSchedule


def test_same_seed_same_site_identical_ordinals():
    a = ChaosSchedule(seed=42, rates={"sgx.ecall_abort": 0.2})
    b = ChaosSchedule(seed=42, rates={"sgx.ecall_abort": 0.2})
    assert a.preview("sgx.ecall_abort", 50) == b.preview("sgx.ecall_abort", 50)


def test_fresh_iterator_replays_identically():
    schedule = ChaosSchedule(seed=7, default_rate=0.3)
    first = [next(schedule.firing_ordinals("memory.torn_write")) for _ in range(1)]
    again = schedule.preview("memory.torn_write", 1)
    assert first == again
    assert schedule.preview("x", 20) == schedule.preview("x", 20)


def test_sites_have_independent_streams():
    schedule = ChaosSchedule(seed=3, default_rate=0.5)
    assert schedule.preview("site.a", 20) != schedule.preview("site.b", 20)


def test_different_seeds_differ():
    a = ChaosSchedule(seed=1, default_rate=0.5).preview("s", 30)
    b = ChaosSchedule(seed=2, default_rate=0.5).preview("s", 30)
    assert a != b


def test_ordinals_strictly_increase():
    ordinals = ChaosSchedule(seed=11, default_rate=0.4).preview("s", 100)
    assert all(b > a for a, b in zip(ordinals, ordinals[1:]))
    assert ordinals[0] >= 1


def test_rate_zero_never_fires():
    schedule = ChaosSchedule(seed=5)  # default_rate 0.0, no rates
    assert schedule.preview("anything", 10) == []


def test_rate_one_fires_every_check():
    schedule = ChaosSchedule(seed=5, rates={"s": 1.0})
    assert schedule.preview("s", 5) == [1, 2, 3, 4, 5]


def test_limit_per_site_bounds_firings():
    schedule = ChaosSchedule(seed=5, rates={"s": 1.0}, limit_per_site=2)
    assert schedule.preview("s", 10) == [1, 2]


def test_permanent_classification():
    schedule = ChaosSchedule(seed=0, permanent=("s.perm",))
    assert schedule.is_permanent("s.perm")
    assert not schedule.is_permanent("s.other")


def test_geometric_gap_mean_tracks_rate():
    # Statistical sanity on a fixed seed: mean gap of a geometric(rate)
    # stream is 1/rate. Deterministic because the seed is pinned.
    rate = 0.25
    ordinals = ChaosSchedule(seed=123, rates={"s": rate}).preview("s", 400)
    mean_gap = ordinals[-1] / len(ordinals)
    assert 1 / rate * 0.8 < mean_gap < 1 / rate * 1.2


@pytest.mark.parametrize(
    "kwargs",
    [
        {"rates": {"s": 1.5}},
        {"rates": {"s": -0.1}},
        {"default_rate": 2.0},
        {"limit_per_site": -1},
    ],
)
def test_invalid_parameters_rejected(kwargs):
    with pytest.raises(ValueError):
        ChaosSchedule(seed=0, **kwargs)
