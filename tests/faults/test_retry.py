"""RetryPolicy semantics: what retries, what propagates, how it backs off."""

import pytest

from repro.errors import (
    PermanentFault,
    RetryExhausted,
    TransientFault,
    VerificationFailure,
)
from repro.faults import NO_RETRY, RetryPolicy


class Flaky:
    """Callable failing ``failures`` times before returning ``value``."""

    def __init__(self, failures, error=None, value="ok"):
        self.remaining = failures
        self.error = error or TransientFault("flaky")
        self.value = value
        self.calls = 0

    def __call__(self):
        self.calls += 1
        if self.remaining > 0:
            self.remaining -= 1
            raise self.error
        return self.value


def test_success_first_try():
    fn = Flaky(failures=0)
    assert RetryPolicy().call(fn) == "ok"
    assert fn.calls == 1


def test_transient_fault_retried_to_success():
    fn = Flaky(failures=2)
    assert RetryPolicy(max_attempts=3).call(fn) == "ok"
    assert fn.calls == 3


def test_exhaustion_raises_typed_error_with_cause():
    fn = Flaky(failures=10)
    with pytest.raises(RetryExhausted) as excinfo:
        RetryPolicy(max_attempts=3).call(fn)
    assert fn.calls == 3
    assert excinfo.value.attempts == 3
    assert isinstance(excinfo.value.last_error, TransientFault)
    assert isinstance(excinfo.value.__cause__, TransientFault)


def test_non_retryable_error_propagates_immediately():
    fn = Flaky(failures=5, error=VerificationFailure("alarm"))
    with pytest.raises(VerificationFailure):
        RetryPolicy(max_attempts=5).call(fn)
    assert fn.calls == 1  # an integrity alarm must never be retried


def test_permanent_fault_never_retried_even_if_type_listed():
    # PermanentFault subclasses FaultInjected; even a policy listing the
    # base class must honour the instance's retryable=False attribute.
    fn = Flaky(failures=5, error=PermanentFault("dead"))
    policy = RetryPolicy(max_attempts=5, retryable=(TransientFault, PermanentFault))
    with pytest.raises(PermanentFault):
        policy.call(fn)
    assert fn.calls == 1


def test_no_retry_policy_runs_exactly_once():
    fn = Flaky(failures=1)
    with pytest.raises(TransientFault):
        NO_RETRY.call(fn)
    assert fn.calls == 1


def test_on_retry_callback_counts_retries():
    fn = Flaky(failures=2)
    seen = []
    RetryPolicy(max_attempts=3).call(
        fn, on_retry=lambda attempt, err: seen.append((attempt, type(err)))
    )
    assert seen == [(1, TransientFault), (2, TransientFault)]


def test_exponential_backoff_schedule():
    policy = RetryPolicy(
        max_attempts=5, base_delay=0.01, multiplier=2.0, max_delay=0.03
    )
    # attempt 1 is the first try: no delay; then 0.01, 0.02, capped 0.03
    assert policy.delay_before_attempt(1) == 0.0
    assert policy.delay_before_attempt(2) == pytest.approx(0.01)
    assert policy.delay_before_attempt(3) == pytest.approx(0.02)
    assert policy.delay_before_attempt(4) == pytest.approx(0.03)
    assert policy.delay_before_attempt(5) == pytest.approx(0.03)


def test_sleep_injected_not_wallclock():
    sleeps = []
    fn = Flaky(failures=3)
    RetryPolicy(max_attempts=4, base_delay=0.5, max_delay=10.0).call(
        fn, sleep=sleeps.append
    )
    assert sleeps == [pytest.approx(0.5), pytest.approx(1.0), pytest.approx(2.0)]


def test_timeout_budget_exhausts_before_attempts():
    clock = {"now": 0.0}

    def fake_clock():
        return clock["now"]

    def fake_sleep(seconds):
        clock["now"] += seconds

    fn = Flaky(failures=100)
    policy = RetryPolicy(
        max_attempts=100, base_delay=1.0, multiplier=1.0, max_delay=1.0, timeout=2.5
    )
    with pytest.raises(RetryExhausted) as excinfo:
        policy.call(fn, sleep=fake_sleep, clock=fake_clock)
    # budget 2.5s at 1s per retry: try, sleep(1), try, sleep(1), try, stop
    assert excinfo.value.attempts == 3
    assert "budget" in str(excinfo.value)


@pytest.mark.parametrize(
    "kwargs",
    [
        {"max_attempts": 0},
        {"base_delay": -1.0},
        {"max_delay": -0.1},
        {"multiplier": 0.5},
        {"timeout": -1.0},
    ],
)
def test_invalid_policy_rejected(kwargs):
    with pytest.raises(ValueError):
        RetryPolicy(**kwargs)
