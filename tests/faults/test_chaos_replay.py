"""Seeded chaos: replayability, typed-error discipline, degradation.

The acceptance contract of the fault subsystem, pinned end to end:

* two runs of the same workload under the same :class:`ChaosSchedule`
  seed produce *identical* fault sequences, per-operation outcomes and
  final table contents — chaos runs are replayable byte-for-byte;
* every fault that surfaces does so as a typed error; successful reads
  always return exactly what a shadow model predicts (zero
  silently-wrong results), and a final verification pass is clean;
* with the background verifier down, queries still execute but come
  back flagged unverified (authenticated flag) and an incident opens;
  recovery resolves it.
"""

import dataclasses
import random

import pytest

from repro.core.config import VeriDBConfig
from repro.core.database import VeriDB
from repro.core.portal import AuthenticatedQuery, digest_result
from repro.errors import (
    AuthenticationError,
    PermanentFault,
    RetryExhausted,
    TransientFault,
)
from repro.faults import ChaosPlane, ChaosSchedule, scoped_fault_plane, sites
from tests.conftest import poll_until

#: faults that may legitimately surface to the workload driver; anything
#: else escaping a chaos run is a bug (silent corruption or an untyped
#: error), and the test fails on it
TYPED_SURFACED_FAULTS = (TransientFault, PermanentFault, RetryExhausted)

CHAOS_RATES = {
    sites.ECALL_ABORT: 0.08,
    sites.SPLICE_INTERRUPTION: 0.08,
    sites.EPC_SWAP_ERROR: 0.03,
    sites.TRANSIENT_READ_ERROR: 0.003,  # checked once per cell access
    sites.COMPACTION_ABORT: 0.2,
}


def run_chaos(seed: int, ops: int = 150):
    """One seeded chaos run; returns everything a replay must reproduce."""
    plane = ChaosPlane(ChaosSchedule(seed=seed, rates=CHAOS_RATES))
    plane.disarm()  # quiet load phase: faults only hit the armed workload
    with scoped_fault_plane(plane):
        db = VeriDB(VeriDBConfig(key_seed=17))
        client = db.connect()
        client.execute("CREATE TABLE kv (id INTEGER PRIMARY KEY, v INTEGER)")
        for i in range(20):
            client.execute(f"INSERT INTO kv VALUES ({i}, {i * 7})")
    model = {i: i * 7 for i in range(20)}
    driver = random.Random(seed * 1_000_003)
    outcomes = []
    plane.arm()
    for n in range(ops):
        roll = driver.random()
        key = driver.randrange(50)
        if roll < 0.35:
            sql = (
                f"UPDATE kv SET v = {key * 11} WHERE id = {key}"
                if key in model
                else f"INSERT INTO kv VALUES ({key}, {key * 11})"
            )
            apply = lambda: model.__setitem__(key, key * 11)
        elif roll < 0.5:
            sql = f"DELETE FROM kv WHERE id = {key}"
            apply = lambda: model.pop(key, None)
        else:
            sql = f"SELECT id, v FROM kv WHERE id = {key}"
            apply = None
        try:
            result = client.execute(sql)
        except TYPED_SURFACED_FAULTS as fault:
            outcomes.append(("fault", type(fault).__name__, n))
            continue
        if apply is not None:
            apply()
        elif result.rows != (
            ((key, model[key]),) if key in model else ()
        ):
            raise AssertionError(
                f"silently wrong read at op {n}: {result.rows!r}"
            )
        outcomes.append(("ok", sql.split()[0], n))
        if n % 40 == 39:
            try:
                db.verify_now()
                outcomes.append(("verify-ok", "", n))
            except TYPED_SURFACED_FAULTS as fault:
                outcomes.append(("verify-fault", type(fault).__name__, n))
    plane.disarm()
    rows = tuple(db.sql("SELECT id, v FROM kv ORDER BY id").rows)
    digest = digest_result(("id", "v"), rows, len(rows))
    db.verify_now()  # the safe-abort sites left nothing corrupted behind
    return outcomes, plane.log, rows, digest, model


@pytest.mark.chaos
def test_same_seed_runs_are_byte_identical():
    first = run_chaos(seed=2024)
    second = run_chaos(seed=2024)
    assert first[1] == second[1]  # identical fault sequences...
    assert first[0] == second[0]  # ...identical per-op outcomes...
    assert first[3] == second[3]  # ...identical final table digest
    # and the chaos actually exercised the sites
    assert len(first[1]) > 0
    fired_sites = {record.site for record in first[1]}
    assert sites.ECALL_ABORT in fired_sites or sites.SPLICE_INTERRUPTION in fired_sites


@pytest.mark.chaos
def test_final_state_matches_shadow_model():
    outcomes, log, rows, _digest, model = run_chaos(seed=77)
    assert dict(rows) == model  # no lost, duplicated or mangled writes
    assert any(kind == "fault" for kind, *_ in outcomes) or len(log) > 0


@pytest.mark.chaos
def test_different_seeds_diverge():
    a = run_chaos(seed=1, ops=80)
    b = run_chaos(seed=2, ops=80)
    assert a[1] != b[1]  # different seeds: different fault sequences


# ----------------------------------------------------------------------
# graceful degradation: verifier down ⇒ flagged responses + incident
# ----------------------------------------------------------------------
def _degraded_db():
    plane = ChaosPlane(
        ChaosSchedule(
            seed=5,
            rates={sites.VERIFIER_CRASH_AFTER_END_PASS: 1.0},
            limit_per_site=1,
        )
    )
    plane.disarm()
    with scoped_fault_plane(plane):
        db = VeriDB(VeriDBConfig(key_seed=23))
        client = db.connect()
        client.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)")
        client.execute("INSERT INTO t VALUES (1, 10)")
    return db, client, plane


def test_verifier_down_degrades_gracefully_and_recovers():
    db, client, plane = _degraded_db()
    healthy = client.execute("SELECT v FROM t WHERE id = 1")
    assert healthy.verified  # no background loop yet: nothing degraded

    db.start_background_verification()
    plane.arm()  # first clean epoch close now kills the loop
    assert poll_until(lambda: db.storage.verifier.background_degraded())
    plane.disarm()

    degraded = client.execute("SELECT v FROM t WHERE id = 1")
    assert degraded.rows == ((10,),)  # queries still execute...
    assert not degraded.verified  # ...but are flagged unverified
    incidents = db.incidents.active("verifier-down")
    assert len(incidents) == 1  # and exactly one incident is open
    client.execute("SELECT v FROM t WHERE id = 1")
    assert len(db.incidents.active("verifier-down")) == 1  # deduplicated

    # recovery: surface the crash, restart the loop, flag clears
    with pytest.raises(TransientFault):
        db.stop_background_verification()
    db.start_background_verification(pause_seconds=0.005)
    assert poll_until(lambda: db.storage.verifier.background_alive())
    recovered = client.execute("SELECT v FROM t WHERE id = 1")
    assert recovered.verified
    assert db.incidents.active("verifier-down") == []
    resolved = [i for i in db.incidents.all() if i.key == "verifier-down"]
    assert resolved and all(i.resolved for i in resolved)
    db.stop_background_verification()


def test_unverified_flag_is_authenticated_both_ways():
    db, client, plane = _degraded_db()
    db.start_background_verification()
    plane.arm()
    assert poll_until(lambda: db.storage.verifier.background_degraded())
    plane.disarm()

    qid = client._fresh_qid()
    sql = "SELECT v FROM t WHERE id = 1"
    mac = client._mac.tag(qid, sql.encode("utf-8"))
    endorsed = db.enclave.ecall(
        "submit_query", AuthenticatedQuery(qid=qid, sql=sql, mac=mac)
    )
    assert not endorsed.verified
    # a host stripping the degraded flag fails the endorsement check
    forged = dataclasses.replace(endorsed, verified=True)
    with pytest.raises(AuthenticationError):
        client._check(qid, forged)
    # the genuine response, flag intact, is accepted
    client._check(qid, endorsed)

    # other direction: a healthy result cannot be branded unverified
    with pytest.raises(TransientFault):
        db.stop_background_verification()
    qid2 = client._fresh_qid()
    mac2 = client._mac.tag(qid2, sql.encode("utf-8"))
    endorsed2 = db.enclave.ecall(
        "submit_query", AuthenticatedQuery(qid=qid2, sql=sql, mac=mac2)
    )
    assert endorsed2.verified
    forged2 = dataclasses.replace(endorsed2, verified=False)
    with pytest.raises(AuthenticationError):
        client._check(qid2, forged2)
