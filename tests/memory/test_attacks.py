"""Soundness tests: every attack the paper claims to detect is detected.

Each test stages an attack through the :class:`Adversary` façade and
asserts the *next epoch close* raises :class:`VerificationFailure` — the
deferred-detection guarantee of Section 4.1 / 5.5.
"""

import pytest

from repro.crypto.prf import PRF
from repro.errors import VerificationFailure
from repro.memory.adversary import Adversary
from repro.memory.cells import make_addr
from repro.memory.rsws import RSWSGroup
from repro.memory.verified import VerifiedMemory
from repro.memory.verifier import Verifier


@pytest.fixture
def setup():
    vmem = VerifiedMemory(prf=PRF(b"a" * 32), rsws=RSWSGroup(n_partitions=2))
    for p in range(3):
        vmem.register_page(p)
        for i in range(6):
            vmem.alloc(make_addr(p, i * 32), f"record-{p}-{i}".encode())
    verifier = Verifier(vmem)
    verifier.run_pass()  # establish a clean epoch
    adversary = Adversary(vmem.memory)
    return vmem, verifier, adversary


def test_clean_run_no_false_alarm(setup):
    """Endorsement property: correct behaviour never raises alarms."""
    vmem, verifier, _ = setup
    for i in range(6):
        vmem.read(make_addr(0, i * 32))
        vmem.write(make_addr(1, i * 32), f"v{i}".encode())
    verifier.run_pass()
    assert verifier.stats.alarms == 0


def test_data_corruption_detected(setup):
    vmem, verifier, adversary = setup
    adversary.corrupt(make_addr(0, 0), b"evil")
    with pytest.raises(VerificationFailure):
        verifier.run_pass()


def test_timestamp_tampering_detected(setup):
    vmem, verifier, adversary = setup
    adversary.corrupt_timestamp(make_addr(0, 0), 1)
    with pytest.raises(VerificationFailure):
        verifier.run_pass()


def test_replay_of_stale_value_detected(setup):
    """The freshness attack: restore an old (value, timestamp) pair."""
    vmem, verifier, adversary = setup
    addr = make_addr(1, 0)
    adversary.observe(addr)
    vmem.write(addr, b"newer-value")  # legitimate update
    adversary.replay(addr)  # roll the cell back
    with pytest.raises(VerificationFailure):
        verifier.run_pass()


def test_erasure_detected(setup):
    vmem, verifier, adversary = setup
    adversary.erase(make_addr(2, 0))
    with pytest.raises(VerificationFailure):
        verifier.run_pass()


def test_fabrication_detected(setup):
    vmem, verifier, adversary = setup
    adversary.fabricate(make_addr(2, 9000), b"forged-record", timestamp=123)
    with pytest.raises(VerificationFailure):
        verifier.run_pass()


def test_swap_detected(setup):
    """Relocating cells breaks the addr binding even with data intact."""
    vmem, verifier, adversary = setup
    adversary.swap(make_addr(0, 0), make_addr(0, 32))
    with pytest.raises(VerificationFailure):
        verifier.run_pass()


def test_memory_rollback_detected(setup):
    vmem, verifier, adversary = setup
    image = adversary.snapshot()
    for i in range(6):
        vmem.write(make_addr(0, i * 32), f"epoch2-{i}".encode())
    adversary.rollback_memory(image)
    with pytest.raises(VerificationFailure):
        verifier.run_pass()


def test_corruption_read_by_operation_still_detected(setup):
    """Even if a verified read consumes tampered data (and returns it),
    the epoch close still raises — detection is deferred, not lost."""
    vmem, verifier, adversary = setup
    addr = make_addr(0, 0)
    adversary.corrupt(addr, b"evil")
    returned = vmem.read(addr)  # the engine is fed the tampered value...
    assert returned == b"evil"
    with pytest.raises(VerificationFailure):  # ...but the client learns of it
        verifier.run_pass()


def test_detection_is_deferred_not_immediate(setup):
    """In-place corruption is invisible until the epoch closes (Section 6.2:
    VeriDB trades online verification for performance)."""
    vmem, verifier, adversary = setup
    adversary.corrupt(make_addr(0, 0), b"evil")
    # no exception yet; ops on *other* cells proceed
    vmem.read(make_addr(1, 0))
    with pytest.raises(VerificationFailure):
        verifier.run_pass()


def test_corrupt_directory_omission_detected(setup):
    """Hiding a cell from the (untrusted) page directory is an omission."""
    vmem, verifier, adversary = setup
    adversary.erase(make_addr(1, 32))
    with pytest.raises(VerificationFailure):
        verifier.run_pass()


def test_alarm_counted(setup):
    vmem, verifier, adversary = setup
    adversary.corrupt(make_addr(0, 0), b"x")
    with pytest.raises(VerificationFailure):
        verifier.run_pass()
    assert verifier.stats.alarms == 1
