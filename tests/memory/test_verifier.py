"""Unit tests for Algorithm 2: non-quiescent epoch verification."""

import pytest

from repro.crypto.prf import PRF
from repro.errors import ConfigurationError
from repro.memory.cells import make_addr
from repro.memory.rsws import RSWSGroup
from repro.memory.verified import VerifiedMemory
from repro.memory.verifier import Verifier


def make_vmem(pages=4, partitions=2, page_digests=False):
    vmem = VerifiedMemory(
        prf=PRF(b"v" * 32),
        rsws=RSWSGroup(n_partitions=partitions),
        page_digests=page_digests,
    )
    for p in range(pages):
        vmem.register_page(p)
    return vmem


def fill(vmem, pages=4, cells_per_page=8):
    for p in range(pages):
        for i in range(cells_per_page):
            vmem.alloc(make_addr(p, i * 64), f"cell-{p}-{i}".encode())


def test_clean_pass_succeeds():
    vmem = make_vmem()
    fill(vmem)
    verifier = Verifier(vmem)
    verifier.run_pass()
    assert verifier.stats.passes_completed == 1
    assert verifier.stats.pages_scanned == 4
    assert verifier.stats.cells_scanned == 32
    assert verifier.stats.alarms == 0


def test_epoch_advances():
    vmem = make_vmem()
    fill(vmem)
    verifier = Verifier(vmem)
    assert vmem.epoch == 0
    verifier.run_pass()
    assert vmem.epoch == 1
    verifier.run_pass()
    assert vmem.epoch == 2


def test_operations_between_passes_stay_consistent():
    vmem = make_vmem()
    fill(vmem)
    verifier = Verifier(vmem)
    verifier.run_pass()
    vmem.write(make_addr(0, 0), b"new")
    vmem.read(make_addr(1, 64))
    vmem.free(make_addr(2, 0))
    vmem.alloc(make_addr(3, 9999), b"fresh")
    verifier.run_pass()


def test_incremental_steps_cover_all_pages():
    vmem = make_vmem(pages=3)
    fill(vmem, pages=3)
    verifier = Verifier(vmem)
    done = [verifier.step() for _ in range(3)]
    assert done == [False, False, True]
    assert verifier.stats.passes_completed == 1
    assert vmem.epoch == 1


def test_ops_interleaved_with_steps():
    """Non-quiescence: routine operations interleave with the page scans."""
    vmem = make_vmem(pages=4)
    fill(vmem, pages=4)
    verifier = Verifier(vmem)
    assert verifier.step() is False
    vmem.write(make_addr(0, 0), b"during-scan")  # page possibly already scanned
    vmem.write(make_addr(3, 0), b"during-scan")  # page possibly not yet scanned
    while not verifier.step():
        pass
    # next epoch still closes cleanly
    verifier.run_pass()


def test_trigger_scans_every_k_ops():
    vmem = make_vmem(pages=2)
    fill(vmem, pages=2)
    verifier = Verifier(vmem)
    verifier.install_trigger(ops_per_step=5)
    for i in range(25):
        vmem.read(make_addr(0, (i % 8) * 64))
    assert verifier.stats.pages_scanned == 5
    verifier.remove_trigger()


def test_trigger_validation():
    vmem = make_vmem()
    verifier = Verifier(vmem)
    with pytest.raises(ConfigurationError):
        verifier.install_trigger(0)


def test_page_registered_mid_pass_joins_next_epoch():
    vmem = make_vmem(pages=3)
    fill(vmem, pages=3)
    verifier = Verifier(vmem)
    assert verifier.step() is False
    vmem.register_page(50)
    vmem.alloc(make_addr(50, 0), b"late")
    while not verifier.step():
        pass
    verifier.run_pass()  # second pass covers the late page and closes cleanly
    assert verifier.stats.alarms == 0


def test_page_deregistered_mid_pass():
    vmem = make_vmem(pages=3)
    fill(vmem, pages=3)
    verifier = Verifier(vmem)
    assert verifier.step() is False
    vmem.deregister_page(2)
    while not verifier.step():
        pass
    verifier.run_pass()


def test_background_verifier_runs_and_stops():
    vmem = make_vmem()
    fill(vmem)
    verifier = Verifier(vmem)
    verifier.start_background()
    for i in range(200):
        vmem.read(make_addr(0, (i % 8) * 64))
    verifier.stop_background()
    assert verifier.stats.passes_completed >= 1


def test_touched_mode_requires_page_digests():
    vmem = make_vmem(page_digests=False)
    with pytest.raises(ConfigurationError):
        Verifier(vmem, mode="touched")


def test_unknown_mode_rejected():
    with pytest.raises(ConfigurationError):
        Verifier(make_vmem(), mode="bogus")


def test_touched_mode_skips_cold_pages():
    vmem = make_vmem(pages=4, page_digests=True)
    fill(vmem, pages=4)
    verifier = Verifier(vmem, mode="touched")
    verifier.run_pass()  # all 4 touched by fill
    assert verifier.stats.pages_scanned == 4
    vmem.read(make_addr(1, 0))  # touch just one page
    verifier.run_pass()
    assert verifier.stats.pages_scanned == 5
    assert verifier.stats.pages_skipped_untouched >= 3


def test_touched_mode_detects_mutation_between_passes():
    from repro.errors import VerificationFailure

    vmem = make_vmem(pages=2, page_digests=True)
    fill(vmem, pages=2)
    verifier = Verifier(vmem, mode="touched")
    verifier.run_pass()
    addr = make_addr(0, 0)
    cell = vmem.memory.raw_read(addr)
    vmem.memory.raw_write(addr, b"tampered", cell.timestamp)
    vmem.read(make_addr(0, 64))  # touch the page through a legit op
    with pytest.raises(VerificationFailure):
        verifier.run_pass()
