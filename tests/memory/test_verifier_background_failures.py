"""Regression tests: the background verifier must never die silently.

Before the fix, the loop only caught :class:`VerificationFailure`; any
other exception (a buggy scan hook, a storage error) killed the daemon
thread without a trace while the system kept serving queries unverified.
"""

import pytest

from repro.crypto.prf import PRF
from repro.errors import VeriDBError, VerificationFailure
from repro.memory.cells import make_addr
from repro.memory.rsws import RSWSGroup
from repro.memory.verified import VerifiedMemory
from repro.memory.verifier import Verifier
from repro.obs import MetricsRegistry, scoped_registry
from tests.conftest import poll_until as wait_until


def make_vmem(pages=4, partitions=2, hooks=None):
    vmem = VerifiedMemory(prf=PRF(b"v" * 32), rsws=RSWSGroup(n_partitions=partitions))
    for p in range(pages):
        vmem.register_page(p, (hooks or {}).get(p))
    for p in range(pages):
        for i in range(4):
            vmem.alloc(make_addr(p, i * 64), f"cell-{p}-{i}".encode())
    return vmem


# ----------------------------------------------------------------------
# crash surfacing
# ----------------------------------------------------------------------
def test_non_verification_exception_surfaces_from_stop():
    def bad_hook(page_id):
        raise RuntimeError("scan hook bug")

    vmem = make_vmem(hooks={2: bad_hook})
    verifier = Verifier(vmem)
    verifier.start_background()
    assert wait_until(lambda: not verifier.background_alive())
    assert isinstance(verifier.background_error(), RuntimeError)
    with pytest.raises(RuntimeError, match="scan hook bug"):
        verifier.stop_background()
    # the error is consumed by the re-raise; a second stop is a no-op
    verifier.stop_background()


def test_verification_failure_also_surfaces_from_stop():
    vmem = make_vmem()
    verifier = Verifier(vmem)
    verifier.run_pass()
    # out-of-band tampering: next pass must alarm
    cell = vmem.memory.raw_read(make_addr(0, 0))
    vmem.memory.raw_write(make_addr(0, 0), b"tampered", cell.timestamp)
    verifier.start_background()
    assert wait_until(lambda: not verifier.background_alive())
    with pytest.raises(VerificationFailure):
        verifier.stop_background()


def test_crash_metrics_and_liveness_gauge():
    def bad_hook(page_id):
        raise RuntimeError("boom")

    with scoped_registry(MetricsRegistry()) as reg:
        vmem = make_vmem(hooks={1: bad_hook})
        verifier = Verifier(vmem)
        verifier.start_background()
        assert wait_until(lambda: not verifier.background_alive())
        snap = reg.snapshot()
        assert snap["verifier.background_alive"]["value"] == 0
        assert snap["verifier.background_crashes"]["value"] == 1
        with pytest.raises(RuntimeError):
            verifier.stop_background()


def test_liveness_gauge_while_running():
    with scoped_registry(MetricsRegistry()) as reg:
        vmem = make_vmem()
        verifier = Verifier(vmem)
        verifier.start_background(pause_seconds=0.01)
        assert wait_until(
            lambda: reg.snapshot()["verifier.background_alive"]["value"] == 1
        )
        assert verifier.background_alive()
        verifier.stop_background()
        assert not verifier.background_alive()
        assert reg.snapshot()["verifier.background_alive"]["value"] == 0
        # a clean run records no crashes
        assert reg.snapshot()["verifier.background_crashes"]["value"] == 0


def test_stop_background_without_start_is_noop():
    verifier = Verifier(make_vmem())
    verifier.stop_background()


def test_background_restart_after_crash():
    calls = {"n": 0}

    def flaky_hook(page_id):
        calls["n"] += 1
        if calls["n"] == 1:
            raise RuntimeError("transient")

    vmem = make_vmem(hooks={0: flaky_hook})
    verifier = Verifier(vmem)
    verifier.start_background()
    assert wait_until(lambda: not verifier.background_alive())
    with pytest.raises(RuntimeError):
        verifier.stop_background()
    # the loop can be restarted once the cause is fixed (an aborted
    # pass leaves half-restamped generations, so the next epoch may
    # legitimately alarm — restartability is what's asserted here)
    verifier.start_background(pause_seconds=0.01)
    assert wait_until(lambda: verifier.stats.passes_completed >= 1)
    try:
        verifier.stop_background()
    except VeriDBError:
        pass


# ----------------------------------------------------------------------
# parallel-worker failure aggregation
# ----------------------------------------------------------------------
def test_aggregate_single_failure_unchanged():
    original = RuntimeError("solo")
    assert Verifier._aggregate_failures([original]) is original


def test_aggregate_prefers_verification_failure():
    crash = RuntimeError("worker crashed")
    alarm = VerificationFailure("digest mismatch", partition=3)
    error = Verifier._aggregate_failures([crash, alarm])
    assert isinstance(error, VerificationFailure)
    assert error.partition == 3
    assert "RuntimeError" in str(error)
    assert "digest mismatch" in str(error)
    assert list(error.failures) == [crash, alarm]


def test_aggregate_plain_crashes_stay_veridb_error():
    failures = [RuntimeError("a"), ValueError("b")]
    error = Verifier._aggregate_failures(failures)
    assert isinstance(error, VeriDBError)
    assert not isinstance(error, VerificationFailure)
    assert list(error.failures) == failures


def test_parallel_pass_reports_all_worker_failures():
    hooks = {
        0: lambda page_id: (_ for _ in ()).throw(RuntimeError("w0")),
        3: lambda page_id: (_ for _ in ()).throw(RuntimeError("w3")),
    }
    vmem = make_vmem(pages=4, hooks=hooks)
    verifier = Verifier(vmem)
    with pytest.raises(VeriDBError) as excinfo:
        # workers=4: pages 0 and 3 land in different sections
        verifier.run_pass(workers=4)
    failures = getattr(excinfo.value, "failures", [excinfo.value])
    assert len(failures) == 2
