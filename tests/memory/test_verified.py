"""Unit tests for Algorithm 1: the protected Read/Write procedures."""

import pytest

from repro.crypto.prf import PRF
from repro.errors import StorageError, VerificationFailure
from repro.memory.cells import make_addr
from repro.memory.rsws import RSWSGroup
from repro.memory.verified import VerifiedMemory
from repro.memory.verifier import Verifier


@pytest.fixture
def vmem():
    memory = VerifiedMemory(prf=PRF(b"t" * 32), rsws=RSWSGroup(n_partitions=2))
    memory.register_page(0)
    memory.register_page(1)
    return memory


def test_alloc_then_read(vmem):
    addr = make_addr(0, 0)
    vmem.alloc(addr, b"value")
    assert vmem.read(addr) == b"value"


def test_write_overwrites(vmem):
    addr = make_addr(0, 0)
    vmem.alloc(addr, b"v1")
    vmem.write(addr, b"v2")
    assert vmem.read(addr) == b"v2"


def test_free_returns_data_and_retires(vmem):
    addr = make_addr(0, 0)
    vmem.alloc(addr, b"v")
    assert vmem.free(addr) == b"v"
    with pytest.raises(VerificationFailure):
        vmem.read(addr)


def test_alloc_requires_registered_page(vmem):
    with pytest.raises(StorageError):
        vmem.alloc(make_addr(99, 0), b"v")


def test_double_alloc_rejected(vmem):
    addr = make_addr(0, 0)
    vmem.alloc(addr, b"v")
    with pytest.raises(StorageError):
        vmem.alloc(addr, b"w")


def test_read_missing_cell_is_detection(vmem):
    with pytest.raises(VerificationFailure):
        vmem.read(make_addr(0, 123))


def test_duplicate_register_rejected(vmem):
    with pytest.raises(StorageError):
        vmem.register_page(0)


def test_read_updates_both_sets(vmem):
    """Algorithm 1: a read adds to RS *and* virtually writes back to WS."""
    addr = make_addr(0, 0)
    vmem.alloc(addr, b"v")
    part = vmem.rsws.partition_for_page(0)
    reads_before = part.stats.reads_recorded
    writes_before = part.stats.writes_recorded
    vmem.read(addr)
    assert part.stats.reads_recorded == reads_before + 1
    assert part.stats.writes_recorded == writes_before + 1


def test_read_refreshes_timestamp(vmem):
    addr = make_addr(0, 0)
    vmem.alloc(addr, b"v")
    ts0 = vmem.memory.raw_read(addr).timestamp
    vmem.read(addr)
    assert vmem.memory.raw_read(addr).timestamp > ts0


def test_quiescent_state_balances_after_final_scan(vmem):
    """After writes + reads + a closing scan, RS must equal WS (Figure 3)."""
    addrs = [make_addr(0, i) for i in range(8)]
    for i, addr in enumerate(addrs):
        vmem.alloc(addr, bytes([i]))
    for addr in addrs[:4]:
        vmem.read(addr)
    vmem.write(addrs[5], b"updated")
    vmem.free(addrs[7])
    Verifier(vmem).run_pass()  # must not raise


def test_unverified_ops_do_not_touch_rsws(vmem):
    addr = make_addr(0, 500)
    total_before = vmem.rsws.total_operations()
    vmem.alloc_unverified(addr, b"meta")
    assert vmem.read_unverified(addr) == b"meta"
    vmem.write_unverified(addr, b"meta2")
    assert vmem.free_unverified(addr) == b"meta2"
    assert vmem.rsws.total_operations() == total_before
    assert vmem.stats.unverified_ops == 4


def test_touched_pages_tracking(vmem):
    assert vmem.touched_pages() == set()
    vmem.alloc(make_addr(1, 0), b"x")
    assert vmem.touched_pages() == {1}
    vmem.clear_touched([1])
    assert vmem.touched_pages() == set()


def test_deregister_retires_cells(vmem):
    addr = make_addr(1, 0)
    vmem.alloc(addr, b"x")
    vmem.deregister_page(1)
    assert not vmem.is_registered(1)
    assert not vmem.memory.exists(addr)
    # retirement balanced: a pass over remaining pages succeeds
    Verifier(vmem).run_pass()


def test_stats_counters(vmem):
    addr = make_addr(0, 0)
    vmem.alloc(addr, b"v")
    vmem.read(addr)
    vmem.write(addr, b"w")
    vmem.free(addr)
    assert vmem.stats.allocs == 1
    assert vmem.stats.verified_reads == 1
    assert vmem.stats.verified_writes == 1
    assert vmem.stats.frees == 1


def test_enclave_state_is_small(vmem):
    for i in range(64):
        vmem.alloc(make_addr(0, i * 8), b"payload")
    # trusted synopsis stays tiny regardless of data volume
    assert vmem.enclave_state_bytes() < 16 * 1024


def test_op_hooks_fire(vmem):
    fired = []
    vmem.add_op_hook(lambda: fired.append(1))
    vmem.alloc(make_addr(0, 0), b"v")
    vmem.read(make_addr(0, 0))
    assert len(fired) == 2
    vmem.remove_op_hook(vmem._on_op[0])
    vmem.read(make_addr(0, 0))
    assert len(fired) == 2
