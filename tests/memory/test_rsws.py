"""Unit tests for partitioned RSWS state."""

import pytest

from repro.errors import ConfigurationError
from repro.memory.rsws import RSWSGroup


def test_partition_count():
    group = RSWSGroup(n_partitions=4)
    assert len(group.partitions) == 4
    with pytest.raises(ConfigurationError):
        RSWSGroup(n_partitions=0)


def test_page_to_partition_stable():
    group = RSWSGroup(n_partitions=4)
    assert group.partition_for_page(5) is group.partition_for_page(5)
    assert group.partition_for_page(5).index == 1


def test_record_and_consistency():
    group = RSWSGroup(n_partitions=2)
    part = group.partition_for_page(0)
    element = b"\x01" * 16
    part.acquire()
    try:
        part.record_write(0, element)
        assert not part.consistent(0)
        part.record_read(0, element)
        assert part.consistent(0)
    finally:
        part.release()


def test_generations_independent():
    group = RSWSGroup(n_partitions=1)
    part = group.partitions[0]
    part.acquire()
    try:
        part.record_write(0, b"\x01" * 16)
        assert part.consistent(1)
        assert not part.consistent(0)
        part.reset_generation(0)
        assert part.consistent(0)
    finally:
        part.release()


def test_stats_count_operations():
    group = RSWSGroup(n_partitions=1)
    part = group.partitions[0]
    part.acquire()
    try:
        part.record_write(0, b"\x01" * 16)
        part.record_read(0, b"\x01" * 16)
    finally:
        part.release()
    assert group.total_operations() == 2
    assert part.stats.reads_recorded == 1
    assert part.stats.writes_recorded == 1


def test_inconsistent_partitions_reported():
    group = RSWSGroup(n_partitions=3)
    part = group.partitions[2]
    part.acquire()
    try:
        part.record_write(0, b"\x07" * 16)
    finally:
        part.release()
    assert group.consistent(0) == [2]
    assert group.consistent(1) == []


def test_contention_counter():
    group = RSWSGroup(n_partitions=1)
    part = group.partitions[0]
    part.acquire()
    part.release()
    assert group.total_contention_waits() == 0
