"""Unit tests for the trusted record cache (repro.memory.cache)."""

import pytest

from repro.crypto.prf import PRF
from repro.errors import ConfigurationError, VerificationFailure
from repro.memory.cache import ENTRY_OVERHEAD, RecordCache
from repro.memory.cells import make_addr
from repro.memory.rsws import RSWSGroup
from repro.memory.verified import VerifiedMemory
from repro.memory.verifier import Verifier
from repro.obs import MetricsRegistry
from repro.sgx.epc import EnclavePageCache


def cache_of(capacity_kb=64, **kwargs) -> RecordCache:
    return RecordCache(capacity_kb * 1024, **kwargs)


# ----------------------------------------------------------------------
# basic interface
# ----------------------------------------------------------------------
def test_lookup_miss_then_admit_then_hit():
    cache = cache_of()
    assert cache.lookup(1) is None
    cache.admit(1, b"payload")
    assert cache.lookup(1) == b"payload"
    assert len(cache) == 1


def test_invalidate_drops_entry():
    cache = cache_of()
    cache.admit(1, b"a")
    cache.invalidate(1)
    assert cache.lookup(1) is None
    cache.invalidate(2)  # absent: no-op


def test_update_refreshes_only_present_entries():
    cache = cache_of()
    cache.admit(1, b"old")
    cache.update(1, b"new")
    assert cache.lookup(1) == b"new"
    # write-around: updates to uncached addresses do not admit
    cache.update(2, b"never")
    assert cache.lookup(2) is None


def test_flush_empties_and_reports_count():
    cache = cache_of()
    for addr in range(5):
        cache.admit(addr, b"x")
    assert cache.flush() == 5
    assert len(cache) == 0
    assert cache.bytes_resident == 0


def test_lookup_many_mixed():
    cache = cache_of()
    cache.admit(1, b"a")
    cache.admit(3, b"c")
    assert cache.lookup_many([1, 2, 3]) == [b"a", None, b"c"]


def test_oversized_value_never_admitted():
    cache = RecordCache(256)
    cache.admit(1, b"x" * 512)
    assert cache.lookup(1) is None


def test_capacity_enforced_in_bytes():
    entry = 100 + ENTRY_OVERHEAD
    cache = RecordCache(3 * entry)
    for addr in range(4):
        cache.admit(addr, bytes(100))
    assert len(cache) == 3
    assert cache.bytes_resident <= 3 * entry


def test_config_validation():
    with pytest.raises(ConfigurationError):
        RecordCache(0)
    with pytest.raises(ConfigurationError):
        RecordCache(1024, policy="mru")
    with pytest.raises(ConfigurationError):
        RecordCache(1024, shard_bytes=0)


# ----------------------------------------------------------------------
# eviction policies
# ----------------------------------------------------------------------
def three_entry_cache(policy: str) -> RecordCache:
    return RecordCache(3 * (8 + ENTRY_OVERHEAD), policy=policy)


def test_lru_evicts_least_recently_used():
    cache = three_entry_cache("lru")
    for addr in (1, 2, 3):
        cache.admit(addr, bytes(8))
    cache.lookup(1)  # 2 is now coldest
    cache.admit(4, bytes(8))
    assert cache.lookup(2) is None
    assert cache.lookup(1) is not None


def test_clock_gives_second_chance():
    cache = three_entry_cache("clock")
    for addr in (1, 2, 3):
        cache.admit(addr, bytes(8))
    cache.lookup(1)  # ref bit set on 1
    # hand clears 1's bit and passes it over; 2 (cold) is the victim
    cache.admit(4, bytes(8))
    assert cache.lookup(1) is not None
    assert cache.lookup(2) is None


def test_2q_scans_evict_from_probation_first():
    cache = RecordCache(8 * (8 + ENTRY_OVERHEAD), policy="2q")
    # hot set: admitted then touched again -> protected queue
    for addr in (1, 2):
        cache.admit(addr, bytes(8))
        cache.lookup(addr)
    # one-touch stream three times the capacity
    for addr in range(100, 124):
        cache.admit(addr, bytes(8))
    assert cache.lookup(1) is not None
    assert cache.lookup(2) is not None


@pytest.mark.parametrize("policy", ["lru", "clock", "2q"])
def test_all_policies_roundtrip_and_bound(policy):
    cache = RecordCache(16 * 1024, policy=policy)
    for addr in range(200):
        cache.admit(addr, bytes(128))
    assert cache.bytes_resident <= 16 * 1024
    assert len(cache) > 0
    cache.flush()
    assert len(cache) == 0


# ----------------------------------------------------------------------
# EPC residency accounting
# ----------------------------------------------------------------------
def test_epc_shards_track_resident_bytes():
    epc = EnclavePageCache(capacity_bytes=1 << 20)
    cache = RecordCache(64 * 1024, epc=epc, shard_bytes=4096)
    assert epc.total_bytes == 0
    cache.admit(1, bytes(3000))
    assert epc.total_bytes == 4096  # ceil(3064/4096) = 1 shard
    cache.admit(2, bytes(3000))
    assert epc.total_bytes == 2 * 4096
    cache.flush()
    assert epc.total_bytes == 0


def test_epc_pressure_triggers_eviction_storm():
    registry = MetricsRegistry()
    # EPC holds two shards; the third admission pages the oldest out
    epc = EnclavePageCache(capacity_bytes=2 * 4096)
    cache = RecordCache(
        64 * 1024, epc=epc, shard_bytes=4096, registry=registry
    )
    for addr in range(3):
        cache.admit(addr, bytes(3000))
    # a shard was paged out; the next operation absorbs the storm
    cache.lookup(0)
    assert len(cache) == 0
    snap = registry.snapshot()
    assert snap["sgx.cache_epc_evictions"]["value"] >= 1
    # all shards were released by the flush
    assert epc.total_bytes == 0


def test_counters_cover_hits_misses_evictions_invalidations():
    registry = MetricsRegistry()
    cache = RecordCache(2 * (8 + ENTRY_OVERHEAD), registry=registry)
    cache.lookup(1)  # miss
    cache.admit(1, bytes(8))
    cache.lookup(1)  # hit
    cache.admit(2, bytes(8))
    cache.admit(3, bytes(8))  # evicts
    cache.invalidate(3)
    snap = registry.snapshot()
    assert snap["memory.cache_misses"]["value"] == 1
    assert snap["memory.cache_hits"]["value"] == 1
    assert snap["memory.cache_evictions"]["value"] == 1
    assert snap["memory.cache_invalidations"]["value"] == 1
    assert (
        snap["memory.cache_bytes_resident"]["value"] == cache.bytes_resident
    )


# ----------------------------------------------------------------------
# VerifiedMemory integration
# ----------------------------------------------------------------------
def make_cached_vmem(capacity_kb=64):
    vmem = VerifiedMemory(
        prf=PRF(b"t" * 32), rsws=RSWSGroup(n_partitions=2)
    )
    vmem.register_page(0)
    vmem.register_page(1)
    vmem.cache = RecordCache(capacity_kb * 1024)
    return vmem


def test_hit_skips_rsws_work_and_timestamp_bump():
    """A cache hit must do zero Algorithm-1 work: no RS/WS append, no
    re-stamp of the untrusted cell."""
    vmem = make_cached_vmem()
    addr = make_addr(0, 0)
    vmem.alloc(addr, b"v")
    vmem.read(addr)  # miss: verified read, admits
    part = vmem.rsws.partition_for_page(0)
    reads_before = part.stats.reads_recorded
    ts_before = vmem.memory.raw_read(addr).timestamp
    assert vmem.read(addr) == b"v"  # hit
    assert part.stats.reads_recorded == reads_before
    assert vmem.memory.raw_read(addr).timestamp == ts_before


def test_write_through_updates_cached_entry():
    vmem = make_cached_vmem()
    addr = make_addr(0, 0)
    vmem.alloc(addr, b"v1")
    vmem.read(addr)
    vmem.write(addr, b"v2")
    assert vmem.cache.lookup(addr) == b"v2"
    assert vmem.read(addr) == b"v2"


def test_free_invalidates_cached_entry():
    vmem = make_cached_vmem()
    addr = make_addr(0, 0)
    vmem.alloc(addr, b"v")
    vmem.read(addr)
    vmem.free(addr)
    assert vmem.cache.lookup(addr) is None


def test_read_many_serves_hits_without_charges():
    vmem = make_cached_vmem()
    addrs = [make_addr(0, i) for i in range(4)]
    for addr in addrs:
        vmem.alloc(addr, b"x%d" % addr)
    assert vmem.read_many(addrs) == [b"x%d" % a for a in addrs]
    part0 = vmem.rsws.partition_for_page(0)
    reads_before = part0.stats.reads_recorded
    # all cached now: the whole batch is served trusted
    assert vmem.read_many(addrs) == [b"x%d" % a for a in addrs]
    assert part0.stats.reads_recorded == reads_before


def test_read_many_admit_false_bypasses_admission():
    vmem = make_cached_vmem()
    addrs = [make_addr(0, i) for i in range(4)]
    for addr in addrs:
        vmem.alloc(addr, b"y")
    vmem.read_many(addrs, admit=False)
    assert len(vmem.cache) == 0
    # but existing entries are still served
    vmem.read(addrs[0])
    assert vmem.cache.lookup(addrs[0]) == b"y"


def test_verification_failure_flushes_cache():
    vmem = make_cached_vmem()
    addr = make_addr(0, 0)
    vmem.alloc(addr, b"v")
    vmem.read(addr)
    assert len(vmem.cache) == 1
    with pytest.raises(VerificationFailure):
        vmem.read(make_addr(0, 123))  # vanished cell
    assert len(vmem.cache) == 0


def test_epoch_close_flushes_cache():
    """Regression guard: a cached value never outlives its epoch."""
    vmem = make_cached_vmem()
    verifier = Verifier(vmem)
    addr = make_addr(0, 0)
    vmem.alloc(addr, b"v")
    vmem.read(addr)
    assert len(vmem.cache) == 1
    verifier.run_pass()
    assert len(vmem.cache) == 0
    # and the system keeps working afterwards
    assert vmem.read(addr) == b"v"
    verifier.run_pass()


def test_tampered_value_not_masked_by_stale_cache_entry():
    """After any alarm the cache holds nothing: a poisoned store cannot
    hide behind a stale trusted copy, and the stale copy cannot mask
    what the store actually contains (detection stays with the
    verifier, as in the uncached protocol)."""
    vmem = make_cached_vmem()
    verifier = Verifier(vmem)
    addr = make_addr(0, 0)
    vmem.alloc(addr, b"honest")
    vmem.read(addr)
    assert vmem.cache.lookup(addr) == b"honest"
    cell = vmem.memory.raw_read(addr)
    vmem.memory.raw_write(addr, b"evil!!", cell.timestamp)
    with pytest.raises(VerificationFailure):
        verifier.run_pass()
    # the alarm flushed the trusted copy; the next read goes to the
    # untrusted store (deferred detection, exactly as without a cache)
    assert len(vmem.cache) == 0
    assert vmem.cache.lookup(addr) is None
