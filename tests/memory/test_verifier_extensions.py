"""Tests for parallel verifiers and grouped touched-page tracking."""

import pytest

from repro.crypto.prf import PRF
from repro.errors import StorageError, VerificationFailure
from repro.memory.adversary import Adversary
from repro.memory.cells import make_addr
from repro.memory.rsws import RSWSGroup
from repro.memory.verified import VerifiedMemory
from repro.memory.verifier import Verifier


def make_vmem(pages=8, cells_per_page=6, **kwargs):
    vmem = VerifiedMemory(
        prf=PRF(b"x" * 32), rsws=RSWSGroup(n_partitions=4), **kwargs
    )
    for p in range(pages):
        vmem.register_page(p)
        for i in range(cells_per_page):
            vmem.alloc(make_addr(p, i * 64), f"cell-{p}-{i}".encode())
    return vmem


# ----------------------------------------------------------------------
# parallel verifiers (Figure 2: multiple verifiers, disjoint sections)
# ----------------------------------------------------------------------
def test_parallel_pass_clean():
    vmem = make_vmem(pages=16)
    verifier = Verifier(vmem)
    verifier.run_pass(workers=4)
    assert verifier.stats.pages_scanned == 16
    assert vmem.epoch == 1
    verifier.run_pass(workers=4)  # epochs keep closing cleanly


def test_parallel_pass_detects_tampering():
    vmem = make_vmem(pages=16)
    verifier = Verifier(vmem)
    verifier.run_pass(workers=3)
    Adversary(vmem.memory).corrupt(make_addr(5, 0), b"evil")
    with pytest.raises(VerificationFailure):
        verifier.run_pass(workers=3)


def test_parallel_matches_serial_digests():
    """Parallel and serial scans produce equivalent epoch outcomes."""
    vmem = make_vmem(pages=9)
    verifier = Verifier(vmem)
    verifier.run_pass(workers=4)
    for i in range(9):
        vmem.write(make_addr(i, 0), f"updated-{i}".encode())
    verifier.run_pass(workers=1)
    verifier.run_pass(workers=5)
    assert verifier.stats.alarms == 0


def test_more_workers_than_pages():
    vmem = make_vmem(pages=2)
    Verifier(vmem).run_pass(workers=8)


# ----------------------------------------------------------------------
# grouped touched tracking (Section 4.3's coarser granularity)
# ----------------------------------------------------------------------
def test_group_size_validation():
    with pytest.raises(StorageError):
        VerifiedMemory(touched_group_size=0)


def test_group_touch_marks_whole_group():
    vmem = make_vmem(pages=8, touched_group_size=4)
    vmem.clear_touched(range(8))
    assert vmem.touched_pages() == set()
    vmem.read(make_addr(5, 0))  # page 5 is in group 1 (pages 4-7)
    assert vmem.touched_pages() == {4, 5, 6, 7}


def test_group_clear_clears_group():
    vmem = make_vmem(pages=8, touched_group_size=4)
    vmem.clear_touched(range(8))
    vmem.read(make_addr(1, 0))
    vmem.clear_touched([0])  # clearing any member clears the group bit
    assert vmem.touched_pages() == set()


def test_grouped_touched_verifier_scans_group():
    vmem = make_vmem(pages=8, touched_group_size=4, page_digests=True)
    verifier = Verifier(vmem, mode="touched")
    verifier.run_pass()  # everything freshly loaded
    scanned_initial = verifier.stats.pages_scanned
    vmem.read(make_addr(2, 0))  # touch one page of group 0
    verifier.run_pass()
    # the whole group (pages 0-3) is rescanned; group 1 is skipped
    assert verifier.stats.pages_scanned == scanned_initial + 4


def test_grouped_tracking_shrinks_enclave_state():
    fine = make_vmem(pages=8, touched_group_size=1)
    coarse = make_vmem(pages=8, touched_group_size=8)
    assert coarse.enclave_state_bytes() <= fine.enclave_state_bytes()


def test_grouped_tracking_still_detects():
    vmem = make_vmem(pages=8, touched_group_size=4, page_digests=True)
    verifier = Verifier(vmem, mode="touched")
    verifier.run_pass()
    addr = make_addr(6, 0)
    cell = vmem.memory.raw_read(addr)
    Adversary(vmem.memory).corrupt(addr, b"evil")
    vmem.read(make_addr(7, 0))  # sibling touch pulls the group into scope
    with pytest.raises(VerificationFailure):
        verifier.run_pass()


# ----------------------------------------------------------------------
# default worker count (VeriDBConfig.verifier_workers)
# ----------------------------------------------------------------------
def test_default_workers_used_by_run_pass():
    from repro.obs import MetricsRegistry

    registry = MetricsRegistry()
    vmem = make_vmem(pages=8)
    verifier = Verifier(vmem, registry=registry, default_workers=3)
    assert registry.snapshot()["verifier.workers"]["value"] == 3
    verifier.run_pass()  # no explicit workers: the default applies
    assert registry.snapshot()["verifier.workers"]["value"] == 3
    verifier.run_pass(workers=5)  # explicit override still wins
    assert registry.snapshot()["verifier.workers"]["value"] == 5


def test_worker_count_validation():
    from repro.errors import ConfigurationError

    vmem = make_vmem(pages=2)
    with pytest.raises(ConfigurationError):
        Verifier(vmem, default_workers=0)
    verifier = Verifier(vmem)
    with pytest.raises(ConfigurationError):
        verifier.run_pass(workers=0)
    with pytest.raises(ConfigurationError):
        verifier.set_default_workers(-1)


def test_workers_default_flows_from_veridb_config():
    from repro.core.config import VeriDBConfig
    from repro.core.database import VeriDB
    from repro.errors import ConfigurationError

    db = VeriDB(VeriDBConfig(key_seed=1, verifier_workers=4))
    assert db.storage.verifier.default_workers == 4
    db.verify_now()  # runs with 4 workers, no alarm
    with pytest.raises(ConfigurationError):
        VeriDBConfig(verifier_workers=0)
