"""Unit tests for the address scheme."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.memory.cells import (
    PAGE_OFFSET_BITS,
    Cell,
    make_addr,
    offset_of,
    page_of,
)


def test_roundtrip_simple():
    addr = make_addr(3, 17)
    assert page_of(addr) == 3
    assert offset_of(addr) == 17


def test_offset_bounds():
    with pytest.raises(ValueError):
        make_addr(0, 1 << PAGE_OFFSET_BITS)
    with pytest.raises(ValueError):
        make_addr(0, -1)
    with pytest.raises(ValueError):
        make_addr(-1, 0)


def test_cell_unpacks():
    data, ts = Cell(b"x", 9)
    assert (data, ts) == (b"x", 9)


@given(
    page=st.integers(min_value=0, max_value=2**30),
    offset=st.integers(min_value=0, max_value=(1 << PAGE_OFFSET_BITS) - 1),
)
def test_roundtrip_property(page, offset):
    addr = make_addr(page, offset)
    assert page_of(addr) == page
    assert offset_of(addr) == offset


@given(
    a=st.tuples(
        st.integers(min_value=0, max_value=1000),
        st.integers(min_value=0, max_value=1000),
    ),
    b=st.tuples(
        st.integers(min_value=0, max_value=1000),
        st.integers(min_value=0, max_value=1000),
    ),
)
def test_addresses_injective(a, b):
    if a != b:
        assert make_addr(*a) != make_addr(*b)
