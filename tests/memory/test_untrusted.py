"""Unit tests for the untrusted cell store."""

import pytest

from repro.errors import StorageError
from repro.memory.cells import make_addr
from repro.memory.untrusted import UntrustedMemory


@pytest.fixture
def mem():
    return UntrustedMemory()


def test_write_read_roundtrip(mem):
    addr = make_addr(1, 0)
    mem.raw_write(addr, b"hello", 7)
    cell = mem.raw_read(addr)
    assert cell.data == b"hello"
    assert cell.timestamp == 7


def test_missing_read_raises(mem):
    with pytest.raises(StorageError):
        mem.raw_read(make_addr(1, 0))
    assert mem.try_read(make_addr(1, 0)) is None


def test_page_directory_tracks_addresses(mem):
    a0, a1 = make_addr(2, 0), make_addr(2, 100)
    other = make_addr(3, 0)
    mem.raw_write(a1, b"b", 1)
    mem.raw_write(a0, b"a", 2)
    mem.raw_write(other, b"c", 3)
    assert mem.page_addresses(2) == [a0, a1]
    assert mem.pages() == [2, 3]


def test_remove_updates_directory(mem):
    addr = make_addr(2, 0)
    mem.raw_write(addr, b"a", 1)
    removed = mem.remove(addr)
    assert removed.data == b"a"
    assert mem.page_addresses(2) == []
    assert 2 not in mem.pages()
    with pytest.raises(StorageError):
        mem.remove(addr)


def test_set_timestamp(mem):
    addr = make_addr(1, 5)
    mem.raw_write(addr, b"x", 1)
    mem.set_timestamp(addr, 42)
    assert mem.raw_read(addr).timestamp == 42
    with pytest.raises(StorageError):
        mem.set_timestamp(make_addr(9, 9), 1)


def test_len_and_iteration(mem):
    for i in range(5):
        mem.raw_write(make_addr(0, i), bytes([i]), i)
    assert len(mem) == 5
    assert sorted(addr for addr, _ in mem.cells()) == [make_addr(0, i) for i in range(5)]


def test_page_bytes(mem):
    mem.raw_write(make_addr(4, 0), b"abc", 1)
    mem.raw_write(make_addr(4, 10), b"de", 2)
    assert mem.page_bytes(4) == 5
    assert mem.page_bytes(99) == 0


def test_overwrite_keeps_directory_single_entry(mem):
    addr = make_addr(1, 1)
    mem.raw_write(addr, b"v1", 1)
    mem.raw_write(addr, b"v2", 2)
    assert mem.page_addresses(1) == [addr]
    assert mem.raw_read(addr).data == b"v2"
