"""Regression tests: full passes vs open incremental passes.

A manual/background ``run_pass`` used to ignore a trigger-driven pass
left mid-flight, scanning already-flipped pages a second time within
the same epoch and corrupting both digest generations — an honest run
then raised a false alarm. ``run_pass`` now drains the open pass first.
"""

import pytest

from repro.crypto.prf import PRF
from repro.errors import VerificationFailure
from repro.memory.adversary import Adversary
from repro.memory.cells import make_addr
from repro.memory.rsws import RSWSGroup
from repro.memory.verified import VerifiedMemory
from repro.memory.verifier import Verifier


def make_vmem(pages=6, cells=8):
    vmem = VerifiedMemory(prf=PRF(b"r" * 32), rsws=RSWSGroup(n_partitions=3))
    for p in range(pages):
        vmem.register_page(p)
        for i in range(cells):
            vmem.alloc(make_addr(p, i * 64), f"c{p}-{i}".encode())
    return vmem


def test_run_pass_drains_open_incremental_pass():
    vmem = make_vmem()
    verifier = Verifier(vmem)
    assert verifier.step() is False  # a pass is now open, mid-flight
    verifier.run_pass()  # must not double-scan the stepped page
    assert verifier.stats.alarms == 0
    verifier.run_pass()
    assert verifier.stats.alarms == 0


def test_trigger_and_manual_passes_interleave_cleanly():
    vmem = make_vmem()
    verifier = Verifier(vmem)
    verifier.install_trigger(ops_per_step=3)
    for i in range(40):
        vmem.write(make_addr(i % 6, (i % 8) * 64), f"v{i}".encode())
        if i % 10 == 9:
            verifier.run_pass()  # interleave manual closes with the trigger
    verifier.remove_trigger()
    verifier.run_pass()
    assert verifier.stats.alarms == 0


def test_drained_pass_still_detects_tampering():
    """Draining must not eat detections: tamper, open a pass, run_pass."""
    vmem = make_vmem()
    verifier = Verifier(vmem)
    verifier.run_pass()
    Adversary(vmem.memory).corrupt(make_addr(2, 0), b"evil")
    assert verifier.step() is False  # pass opens (maybe past page 2 or not)
    with pytest.raises(VerificationFailure):
        # either the drained close or the fresh pass close must alarm
        verifier.run_pass()
        verifier.run_pass()


def test_continuous_verification_through_sql_load():
    """The end-to-end shape that originally exposed the bug."""
    from repro import VeriDB, VeriDBConfig

    db = VeriDB(VeriDBConfig(ops_per_page_scan=10, key_seed=5))
    db.sql("CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)")
    for i in range(120):
        db.sql(f"INSERT INTO t VALUES ({i}, '{'x' * 100}')")
    db.verify_now()
    db.verify_now()
    assert db.storage.verifier.stats.alarms == 0
