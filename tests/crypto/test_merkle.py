"""Unit tests for Merkle hash helpers."""

from repro.crypto.merkle import NODE_DIGEST_SIZE, hash_interior, hash_leaf


def test_leaf_digest_size():
    assert len(hash_leaf(b"k", b"v")) == NODE_DIGEST_SIZE


def test_leaf_sensitivity():
    assert hash_leaf(b"k", b"v") != hash_leaf(b"k", b"w")
    assert hash_leaf(b"k", b"v") != hash_leaf(b"l", b"v")


def test_leaf_key_value_framing():
    assert hash_leaf(b"ab", b"c") != hash_leaf(b"a", b"bc")


def test_interior_from_children():
    a, b = hash_leaf(b"1", b"x"), hash_leaf(b"2", b"y")
    assert hash_interior([a, b]) != hash_interior([b, a])


def test_domain_separation():
    """A leaf hash can never equal an interior hash of the same bytes."""
    payload = b"z" * 32
    assert hash_leaf(payload, b"") != hash_interior([payload])


def test_interior_accepts_iterables():
    children = (hash_leaf(bytes([i]), b"v") for i in range(3))
    digest = hash_interior(children)
    assert len(digest) == NODE_DIGEST_SIZE
