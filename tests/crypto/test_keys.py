"""Unit tests for key generation and the enclave key chain."""

import pytest

from repro.crypto.keys import KEY_SIZE, KeyChain, derive_key, generate_key


def test_generate_key_size():
    assert len(generate_key()) == KEY_SIZE


def test_generate_key_random_distinct():
    assert generate_key() != generate_key()


def test_generate_key_seeded_deterministic():
    assert generate_key(seed=7) == generate_key(seed=7)
    assert generate_key(seed=7) != generate_key(seed=8)


def test_generate_key_bytes_seed():
    assert generate_key(seed=b"abc") == generate_key(seed=b"abc")


def test_derive_key_purpose_separation():
    root = generate_key(seed=1)
    assert derive_key(root, "prf") != derive_key(root, "mac")


def test_derive_key_empty_root_rejected():
    with pytest.raises(ValueError):
        derive_key(b"", "prf")


def test_keychain_purposes_distinct():
    chain = KeyChain(seed=3)
    assert len({chain.prf_key, chain.mac_key, chain.seal_key}) == 3


def test_keychain_memoizes():
    chain = KeyChain(seed=3)
    assert chain.key_for("x") is chain.key_for("x")


def test_keychain_seed_deterministic():
    assert KeyChain(seed=5).prf_key == KeyChain(seed=5).prf_key


def test_keychain_rejects_root_and_seed():
    with pytest.raises(ValueError):
        KeyChain(root=b"r" * 32, seed=1)
