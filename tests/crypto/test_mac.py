"""Unit tests for HMAC message authentication."""

import pytest

from repro.crypto.mac import TAG_SIZE, MessageAuthenticator


@pytest.fixture
def mac():
    return MessageAuthenticator(b"m" * 32)


def test_tag_size(mac):
    assert len(mac.tag(b"hello")) == TAG_SIZE


def test_verify_accepts_genuine(mac):
    tag = mac.tag(b"query", b"42")
    assert mac.verify(tag, b"query", b"42")


def test_verify_rejects_tampered_message(mac):
    tag = mac.tag(b"query", b"42")
    assert not mac.verify(tag, b"query", b"43")


def test_verify_rejects_tampered_tag(mac):
    tag = bytearray(mac.tag(b"query"))
    tag[0] ^= 1
    assert not mac.verify(bytes(tag), b"query")


def test_verify_rejects_wrong_key():
    tag = MessageAuthenticator(b"a" * 32).tag(b"q")
    assert not MessageAuthenticator(b"b" * 32).verify(tag, b"q")


def test_framing_unambiguous(mac):
    assert mac.tag(b"ab", b"c") != mac.tag(b"a", b"bc")


def test_short_key_rejected():
    with pytest.raises(ValueError):
        MessageAuthenticator(b"tiny")
