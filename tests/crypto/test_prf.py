"""Unit tests for the keyed PRF."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.crypto.prf import DIGEST_SIZE, PRF


@pytest.fixture
def prf():
    return PRF(b"k" * 32)


def test_digest_size(prf):
    assert len(prf.cell(1, b"data", 7)) == DIGEST_SIZE


def test_deterministic(prf):
    assert prf.cell(5, b"abc", 9) == prf.cell(5, b"abc", 9)


def test_addr_sensitivity(prf):
    assert prf.cell(1, b"abc", 9) != prf.cell(2, b"abc", 9)


def test_data_sensitivity(prf):
    assert prf.cell(1, b"abc", 9) != prf.cell(1, b"abd", 9)


def test_timestamp_sensitivity(prf):
    assert prf.cell(1, b"abc", 9) != prf.cell(1, b"abc", 10)


def test_key_sensitivity():
    a = PRF(b"a" * 32)
    b = PRF(b"b" * 32)
    assert a.cell(1, b"abc", 9) != b.cell(1, b"abc", 9)


def test_call_counter(prf):
    start = prf.calls
    prf.cell(1, b"x", 1)
    prf.evaluate(b"y")
    assert prf.calls == start + 2


def test_short_key_rejected():
    with pytest.raises(ValueError):
        PRF(b"short")


def test_evaluate_framing(prf):
    # concatenation ambiguity must not collide
    assert prf.evaluate(b"ab", b"c") != prf.evaluate(b"a", b"bc")
    assert prf.evaluate(b"abc") != prf.evaluate(b"ab", b"c")


@given(
    addr=st.integers(min_value=0, max_value=2**63 - 1),
    data=st.binary(max_size=64),
    ts=st.integers(min_value=0, max_value=2**63 - 1),
)
def test_cell_digest_shape(addr, data, ts):
    prf = PRF(b"p" * 32)
    digest = prf.cell(addr, data, ts)
    assert isinstance(digest, bytes)
    assert len(digest) == DIGEST_SIZE
