"""Unit and property tests for the XOR multiset hash."""

import random

from hypothesis import given
from hypothesis import strategies as st

from repro.crypto.prf import PRF
from repro.crypto.sethash import SetHash


def _digests(n, seed=0):
    prf = PRF(b"s" * 32)
    rng = random.Random(seed)
    return [prf.cell(rng.randrange(2**32), b"v", i) for i in range(n)]


def test_empty_is_zero():
    assert SetHash().is_zero


def test_add_remove_roundtrip():
    h = SetHash()
    d = _digests(1)[0]
    h.add(d)
    assert not h.is_zero
    h.remove(d)
    assert h.is_zero


def test_order_independence():
    ds = _digests(32)
    h1, h2 = SetHash(), SetHash()
    for d in ds:
        h1.add(d)
    for d in reversed(ds):
        h2.add(d)
    assert h1 == h2


def test_set_equality_detects_difference():
    ds = _digests(16)
    h1, h2 = SetHash(), SetHash()
    for d in ds:
        h1.add(d)
    for d in ds[:-1]:
        h2.add(d)
    assert h1 != h2
    h2.add(ds[-1])
    assert h1 == h2


def test_merge_is_union():
    ds = _digests(10)
    left, right, whole = SetHash(), SetHash(), SetHash()
    for d in ds[:5]:
        left.add(d)
    for d in ds[5:]:
        right.add(d)
    for d in ds:
        whole.add(d)
    left.merge(right)
    assert left == whole


def test_copy_is_independent():
    h = SetHash()
    h.add(_digests(1)[0])
    clone = h.copy()
    clone.add(_digests(2)[1])
    assert h != clone


def test_digest_roundtrip_and_hex():
    h = SetHash()
    for d in _digests(3):
        h.add(d)
    assert bytes.fromhex(h.hex()) == h.digest()
    assert len(h.digest()) == 16


def test_reset():
    h = SetHash()
    h.add(_digests(1)[0])
    h.reset()
    assert h.is_zero


@given(st.lists(st.binary(min_size=16, max_size=16), max_size=50))
def test_adding_twice_cancels(elements):
    """XOR is an involution: every element folded twice vanishes."""
    h = SetHash()
    for e in elements:
        h.add(e)
    for e in elements:
        h.add(e)
    assert h.is_zero


@given(st.lists(st.binary(min_size=16, max_size=16), max_size=30), st.randoms())
def test_permutation_invariance(elements, rng):
    h1, h2 = SetHash(), SetHash()
    for e in elements:
        h1.add(e)
    shuffled = list(elements)
    rng.shuffle(shuffled)
    for e in shuffled:
        h2.add(e)
    assert h1 == h2
