"""Unit tests for individual volcano operators."""

import pytest

from repro.catalog.schema import Column, Schema
from repro.catalog.types import IntegerType, TextType
from repro.sql.ast_nodes import (
    Aggregate,
    BinaryOp,
    ColumnRef,
    Literal,
    OrderItem,
)
from repro.sql.expressions import RowSchema
from repro.sql.operators import (
    FilterOp,
    HashAggregateOp,
    HashJoinOp,
    IndexNestedLoopJoinOp,
    LimitOp,
    MergeJoinOp,
    NestedLoopJoinOp,
    PhysicalOp,
    PointLookupOp,
    ProjectOp,
    RangeScanOp,
    SeqScanOp,
    SortOp,
)
from repro.storage.engine import StorageEngine
from repro.storage.table_store import VerifiableTable


class RowsOp(PhysicalOp):
    """Test double feeding fixed rows."""

    def __init__(self, bindings, rows):
        super().__init__(RowSchema(bindings), [])
        self._rows = rows

    def rows(self):
        return iter(self._rows)


def make_table():
    schema = Schema(
        columns=[
            Column("id", IntegerType()),
            Column("v", IntegerType(), nullable=False),
            Column("s", TextType()),
        ],
        primary_key="id",
        chain_columns=("v",),
    )
    table = VerifiableTable("t", schema, StorageEngine())
    for i in range(1, 11):
        table.insert((i, i * 10, f"s{i}"))
    return table


# ----------------------------------------------------------------------
# leaf scans
# ----------------------------------------------------------------------
def test_seq_scan():
    op = SeqScanOp(make_table(), "t")
    rows = list(op.timed_rows())
    assert len(rows) == 10
    assert op.rows_out == 10
    assert op.is_scan
    assert "SeqScan" in op.describe()


def test_range_scan_bounds():
    table = make_table()
    op = RangeScanOp(table, "t", "v", lo=30, hi=50)
    assert [r[0] for r in op.timed_rows()] == [3, 4, 5]
    op = RangeScanOp(table, "t", "v", lo=30, hi=50, include_lo=False)
    assert [r[0] for r in op.timed_rows()] == [4, 5]


def test_point_lookup_hit_and_miss():
    table = make_table()
    assert list(PointLookupOp(table, "t", 7).timed_rows()) == [(7, 70, "s7")]
    assert list(PointLookupOp(table, "t", 99).timed_rows()) == []


# ----------------------------------------------------------------------
# filter / project / sort / limit
# ----------------------------------------------------------------------
def test_filter():
    src = RowsOp([(None, "x")], [(1,), (2,), (3,)])
    op = FilterOp(src, BinaryOp(">", ColumnRef("x"), Literal(1)))
    assert list(op.timed_rows()) == [(2,), (3,)]


def test_project():
    src = RowsOp([(None, "a"), (None, "b")], [(1, 2), (3, 4)])
    op = ProjectOp(
        src,
        [BinaryOp("+", ColumnRef("a"), ColumnRef("b")), ColumnRef("a")],
        ["total", "a"],
    )
    assert list(op.timed_rows()) == [(3, 1), (7, 3)]
    assert op.output.names == ["total", "a"]


def test_sort_multi_key():
    src = RowsOp(
        [(None, "a"), (None, "b")], [(1, "z"), (2, "a"), (1, "a")]
    )
    op = SortOp(
        src,
        [
            OrderItem(ColumnRef("a"), ascending=True),
            OrderItem(ColumnRef("b"), ascending=False),
        ],
    )
    assert list(op.timed_rows()) == [(1, "z"), (1, "a"), (2, "a")]


def test_sort_nulls_first_ascending():
    src = RowsOp([(None, "a")], [(2,), (None,), (1,)])
    op = SortOp(src, [OrderItem(ColumnRef("a"))])
    assert list(op.timed_rows()) == [(None,), (1,), (2,)]


def test_limit():
    src = RowsOp([(None, "a")], [(i,) for i in range(10)])
    assert len(list(LimitOp(src, 3).timed_rows())) == 3
    assert list(LimitOp(RowsOp([(None, "a")], []), 3).timed_rows()) == []
    assert list(LimitOp(RowsOp([(None, "a")], [(1,)]), 0).timed_rows()) == []


# ----------------------------------------------------------------------
# joins
# ----------------------------------------------------------------------
def _join_inputs():
    left = RowsOp(
        [("l", "k"), ("l", "x")], [(1, "a"), (2, "b"), (2, "bb"), (3, "c")]
    )
    right = RowsOp([("r", "k"), ("r", "y")], [(2, "B"), (3, "C"), (4, "D")])
    keys = ([ColumnRef("k", "l")], [ColumnRef("k", "r")])
    return left, right, keys


@pytest.mark.parametrize("cls", [NestedLoopJoinOp, MergeJoinOp, HashJoinOp])
def test_equi_joins_agree(cls):
    left, right, (lk, rk) = _join_inputs()
    op = cls(left, right, lk, rk, None)
    rows = sorted(op.timed_rows())
    assert rows == [
        (2, "b", 2, "B"),
        (2, "bb", 2, "B"),
        (3, "c", 3, "C"),
    ]


def test_join_residual_predicate():
    left, right, (lk, rk) = _join_inputs()
    residual = BinaryOp("=", ColumnRef("x", "l"), Literal("b"))
    op = HashJoinOp(left, right, lk, rk, residual)
    assert list(op.timed_rows()) == [(2, "b", 2, "B")]


def test_cross_join():
    left = RowsOp([("l", "a")], [(1,), (2,)])
    right = RowsOp([("r", "b")], [(10,), (20,)])
    op = NestedLoopJoinOp(left, right, [], [], None)
    assert len(list(op.timed_rows())) == 4


def test_merge_join_requires_keys():
    left = RowsOp([("l", "a")], [(1,)])
    right = RowsOp([("r", "b")], [(1,)])
    op = MergeJoinOp(left, right, [], [], None)
    with pytest.raises(ValueError):
        list(op.timed_rows())


def test_index_nl_join():
    table = make_table()
    outer = RowsOp([("o", "ref")], [(3,), (99,), (5,), (None,)])
    op = IndexNestedLoopJoinOp(outer, table, "t", ColumnRef("ref", "o"), None)
    rows = list(op.timed_rows())
    assert rows == [(3, 3, 30, "s3"), (5, 5, 50, "s5")]
    assert op.internal_scan_seconds > 0


def test_duplicate_groups_merge_join():
    left = RowsOp([("l", "k")], [(1,), (1,), (1,)])
    right = RowsOp([("r", "k")], [(1,), (1,)])
    op = MergeJoinOp(
        left, right, [ColumnRef("k", "l")], [ColumnRef("k", "r")], None
    )
    assert len(list(op.timed_rows())) == 6


# ----------------------------------------------------------------------
# aggregation
# ----------------------------------------------------------------------
def test_hash_aggregate_grouped():
    src = RowsOp(
        [(None, "g"), (None, "v")],
        [(1, 10), (2, 5), (1, 30), (2, None)],
    )
    op = HashAggregateOp(
        src,
        [ColumnRef("g")],
        [
            Aggregate("SUM", ColumnRef("v")),
            Aggregate("COUNT", None),
            Aggregate("COUNT", ColumnRef("v")),
            Aggregate("AVG", ColumnRef("v")),
            Aggregate("MIN", ColumnRef("v")),
            Aggregate("MAX", ColumnRef("v")),
        ],
        ["g", "s", "cstar", "cv", "avg", "mn", "mx"],
    )
    rows = {row[0]: row[1:] for row in op.timed_rows()}
    assert rows[1] == (40, 2, 2, 20.0, 10, 30)
    # NULL skipped by SUM/COUNT(v)/AVG but counted by COUNT(*)
    assert rows[2] == (5, 2, 1, 5.0, 5, 5)


def test_hash_aggregate_global_empty_input():
    src = RowsOp([(None, "v")], [])
    op = HashAggregateOp(
        src,
        [],
        [Aggregate("COUNT", None), Aggregate("SUM", ColumnRef("v"))],
        ["c", "s"],
    )
    assert list(op.timed_rows()) == [(0, None)]


def test_hash_aggregate_distinct():
    src = RowsOp([(None, "v")], [(1,), (1,), (2,)])
    op = HashAggregateOp(
        src,
        [],
        [
            Aggregate("COUNT", ColumnRef("v"), distinct=True),
            Aggregate("SUM", ColumnRef("v"), distinct=True),
        ],
        ["c", "s"],
    )
    assert list(op.timed_rows()) == [(2, 3)]


def test_aggregate_arity_check():
    src = RowsOp([(None, "v")], [])
    from repro.errors import PlanningError

    with pytest.raises(PlanningError):
        HashAggregateOp(src, [], [Aggregate("COUNT", None)], ["a", "b"])


# ----------------------------------------------------------------------
# timing / tree utilities
# ----------------------------------------------------------------------
def test_self_seconds_nesting():
    table = make_table()
    scan = SeqScanOp(table, "t")
    filter_op = FilterOp(scan, BinaryOp(">", ColumnRef("v"), Literal(0)))
    project = ProjectOp(filter_op, [ColumnRef("id")], ["id"])
    rows = list(project.timed_rows())
    assert len(rows) == 10
    total_self = sum(op.self_seconds for op in project.walk())
    assert total_self == pytest.approx(project.total_seconds, rel=0.2)
    assert scan.total_seconds <= filter_op.total_seconds <= project.total_seconds


def test_explain_tree():
    table = make_table()
    plan = FilterOp(
        SeqScanOp(table, "t"), BinaryOp(">", ColumnRef("v"), Literal(0))
    )
    text = plan.explain()
    assert "Filter" in text.splitlines()[0]
    assert "SeqScan" in text.splitlines()[1]
