"""array-backed numeric columns (repro.sql.batch.PACK_NUMERIC).

NULL-free homogeneous INT/FLOAT columns derived from row-backed batches
pack into ``array('q')``/``array('d')`` storage; everything else keeps
plain lists. Packing must be invisible to every consumer: same values,
same validity bitmaps, same query results with the flag on and off.
"""

from array import array

import pytest

from repro.catalog.catalog import Catalog
from repro.sql import batch as batch_module
from repro.sql.batch import ColumnBatch, batched
from repro.sql.executor import QueryEngine
from repro.storage.engine import StorageEngine

BATCH_SIZES = (1, 7, 256)


@pytest.fixture
def unpacked():
    batch_module.PACK_NUMERIC = False
    try:
        yield
    finally:
        batch_module.PACK_NUMERIC = True


def make_rows(n):
    return [(i, float(i) * 0.5, None if i % 3 == 0 else i, f"s{i}") for i in range(n)]


# ----------------------------------------------------------------------
# packing eligibility
# ----------------------------------------------------------------------
@pytest.mark.parametrize("size", BATCH_SIZES)
def test_int_and_float_columns_pack(size):
    batch = ColumnBatch.from_rows(make_rows(size))
    ints = batch.column(0)
    floats = batch.column(1)
    assert isinstance(ints, array) and ints.typecode == "q"
    assert isinstance(floats, array) and floats.typecode == "d"
    assert list(ints) == list(range(size))
    assert list(floats) == [i * 0.5 for i in range(size)]


@pytest.mark.parametrize("size", BATCH_SIZES)
def test_nullable_and_text_columns_stay_lists(size):
    batch = ColumnBatch.from_rows(make_rows(size))
    assert type(batch.column(2)) is list  # has NULLs (when size > 1)
    assert type(batch.column(3)) is list  # text


def test_bools_and_mixed_numerics_keep_object_semantics():
    bools = ColumnBatch.from_rows([(True,), (False,)]).column(0)
    assert type(bools) is list  # bool is an int subclass; must not pack
    assert bools == [True, False]
    mixed = ColumnBatch.from_rows([(1,), (2.0,)]).column(0)
    assert type(mixed) is list


def test_out_of_range_int_falls_back():
    big = 2**70
    values = ColumnBatch.from_rows([(1,), (big,)]).column(0)
    assert type(values) is list
    assert values == [1, big]


def test_column_backed_batches_unaffected():
    # packing applies where columns are *derived* from rows; explicitly
    # constructed columns (fused pipeline) pass through untouched
    batch = ColumnBatch([[1, 2, 3]], 3)
    assert type(batch.column(0)) is list


# ----------------------------------------------------------------------
# equivalence: packed and unpacked agree exactly
# ----------------------------------------------------------------------
@pytest.mark.parametrize("size", BATCH_SIZES)
def test_packed_equals_unpacked(size, unpacked):
    rows = make_rows(size)
    plain = ColumnBatch.from_rows(list(rows))
    plain_columns = [list(plain.column(i)) for i in range(4)]
    plain_validity = [plain.validity(i) for i in range(4)]
    batch_module.PACK_NUMERIC = True
    packed = ColumnBatch.from_rows(list(rows))
    assert [list(packed.column(i)) for i in range(4)] == plain_columns
    assert [packed.validity(i) for i in range(4)] == plain_validity
    assert packed.rows == plain.rows


@pytest.mark.parametrize("size", BATCH_SIZES)
def test_validity_bitmap_over_packed_columns(size):
    batch = ColumnBatch.from_rows(make_rows(size))
    # packed columns are NULL-free by construction: all bits set
    assert batch.validity(0) == (1 << size) - 1
    expected = 0
    for j in range(size):
        if j % 3 != 0:
            expected |= 1 << j
    assert batch.validity(2) == expected


@pytest.mark.parametrize("size", BATCH_SIZES)
def test_take_mask_and_slice_roundtrip(size):
    batch = ColumnBatch.from_rows(make_rows(size))
    batch.column(0)  # force packing
    kept = batch.take_mask([j % 2 == 0 for j in range(size)])
    assert [row[0] for row in kept.rows] == [j for j in range(size) if j % 2 == 0]
    head = batch.slice(min(3, size))
    assert len(head) == min(3, size)


@pytest.mark.parametrize("size", BATCH_SIZES)
def test_batched_chunks_pack(size):
    chunks = list(batched(make_rows(300), size))
    assert sum(len(c) for c in chunks) == 300
    first = chunks[0].column(0)
    assert isinstance(first, array)


# ----------------------------------------------------------------------
# end to end: query results identical with packing on and off
# ----------------------------------------------------------------------
def _engine_results(n_rows):
    engine = QueryEngine(Catalog(), StorageEngine())
    engine.execute(
        "CREATE TABLE m (id INTEGER PRIMARY KEY, v INTEGER NOT NULL, "
        "f FLOAT, CHAIN (v))"
    )
    store = engine.catalog.lookup("m").store
    for i in range(n_rows):
        store.insert((i, i * 7 % 100, None if i % 5 == 0 else i * 0.25))
    return [
        engine.execute(sql).rows
        for sql in (
            "SELECT v, f FROM m WHERE v > 40 ORDER BY id",
            "SELECT COUNT(*), SUM(v), AVG(f), MIN(f), MAX(v) FROM m",
            "SELECT v, COUNT(*), SUM(f) FROM m GROUP BY v ORDER BY v",
            "SELECT id FROM m WHERE f IS NULL ORDER BY id",
        )
    ]


def test_query_results_identical_with_and_without_packing(unpacked):
    plain = _engine_results(311)
    batch_module.PACK_NUMERIC = True
    packed = _engine_results(311)
    assert packed == plain
