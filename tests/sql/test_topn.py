"""Top-N fusion of ORDER BY + LIMIT."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.catalog.catalog import Catalog
from repro.sql.executor import QueryEngine
from repro.storage.engine import StorageEngine


@pytest.fixture
def engine():
    qe = QueryEngine(Catalog(), StorageEngine())
    qe.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER, w INTEGER)")
    for i in range(50):
        qe.execute(f"INSERT INTO t VALUES ({i}, {(i * 17) % 23}, {i % 3})")
    return qe


def test_topn_plan_chosen(engine):
    result = engine.execute("SELECT id FROM t ORDER BY v LIMIT 5")
    assert "TopN" in result.explain()
    assert "Limit" not in result.explain()


def test_topn_matches_full_sort(engine):
    fused = engine.execute("SELECT v, id FROM t ORDER BY v, id LIMIT 7").rows
    full = engine.execute("SELECT v, id FROM t ORDER BY v, id").rows[:7]
    assert fused == full


def test_topn_descending(engine):
    rows = engine.execute("SELECT v FROM t ORDER BY v DESC LIMIT 3").rows
    all_values = sorted(
        (r[0] for r in engine.execute("SELECT v FROM t").rows), reverse=True
    )
    assert [r[0] for r in rows] == all_values[:3]


def test_topn_mixed_directions(engine):
    fused = engine.execute(
        "SELECT w, v FROM t ORDER BY w ASC, v DESC LIMIT 10"
    ).rows
    full = engine.execute("SELECT w, v FROM t ORDER BY w ASC, v DESC").rows
    assert fused == full[:10]


def test_topn_star(engine):
    result = engine.execute("SELECT * FROM t ORDER BY v LIMIT 4")
    assert "TopN" in result.explain()
    assert len(result.rows) == 4


def test_topn_larger_than_input(engine):
    result = engine.execute("SELECT id FROM t ORDER BY id LIMIT 500")
    assert len(result.rows) == 50


def test_topn_zero_limit(engine):
    assert engine.execute("SELECT id FROM t ORDER BY id LIMIT 0").rows == []


def test_distinct_disables_fusion(engine):
    result = engine.execute("SELECT DISTINCT w FROM t ORDER BY w LIMIT 2")
    assert "TopN" not in result.explain()
    assert [r[0] for r in result.rows] == [0, 1]


def test_topn_with_nulls(engine):
    engine.execute(
        "CREATE TABLE n (id INTEGER PRIMARY KEY, x INTEGER)"
    )
    engine.execute("INSERT INTO n VALUES (1, 5), (2, NULL), (3, 1)")
    rows = engine.execute("SELECT x FROM n ORDER BY x LIMIT 2").rows
    assert rows == [(None,), (1,)]  # NULLs first on ascending


def test_topn_over_aggregate(engine):
    fused = engine.execute(
        "SELECT w, SUM(v) AS s FROM t GROUP BY w ORDER BY s DESC LIMIT 2"
    ).rows
    full = engine.execute(
        "SELECT w, SUM(v) AS s FROM t GROUP BY w ORDER BY s DESC"
    ).rows
    assert fused == full[:2]


@settings(max_examples=30, deadline=None)
@given(
    values=st.lists(st.integers(0, 100), min_size=1, max_size=40),
    limit=st.integers(1, 10),
    descending=st.booleans(),
)
def test_topn_property(values, limit, descending):
    qe = QueryEngine(Catalog(), StorageEngine())
    qe.execute("CREATE TABLE p (id INTEGER PRIMARY KEY, v INTEGER)")
    for i, v in enumerate(values):
        qe.execute(f"INSERT INTO p VALUES ({i}, {v})")
    direction = "DESC" if descending else "ASC"
    rows = qe.execute(
        f"SELECT v FROM p ORDER BY v {direction} LIMIT {limit}"
    ).rows
    expected = sorted(values, reverse=descending)[:limit]
    assert [r[0] for r in rows] == expected
