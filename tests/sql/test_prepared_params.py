"""``?`` placeholders end to end: parser, binding, auth, service.

Parameters flow from the lexer (ordinal ``?`` markers) through the
planner (sargable equality params are absorbed into point lookups and
range scans; range-bound params stay residual) to execution-time
binding, and across the trust boundary: the client MACs the bound
values together with the SQL text, so a host can substitute neither.
"""

import pytest

from repro.catalog.catalog import Catalog
from repro.core.config import VeriDBConfig
from repro.core.database import VeriDB
from repro.core.portal import AuthenticatedQuery
from repro.crypto.mac import MessageAuthenticator
from repro.errors import AuthenticationError, ExecutionError
from repro.obs import MetricsRegistry
from repro.sql.ast_nodes import Parameter
from repro.sql.executor import QueryEngine
from repro.sql.operators import PointLookupOp, RangeScanOp, SeqScanOp
from repro.sql.parser import parse_statement_with_params
from repro.sql.planner import Planner
from repro.storage.engine import StorageEngine
from repro.storage.record import RecordCodec


def make_engine():
    engine = QueryEngine(Catalog(), StorageEngine(registry=MetricsRegistry()))
    engine.execute(
        "CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER, w TEXT)"
    )
    for i in range(20):
        engine.execute(f"INSERT INTO t VALUES ({i}, {i * 5}, 'w{i % 3}')")
    return engine


# ----------------------------------------------------------------------
# parser: ordinal placeholder counting
# ----------------------------------------------------------------------
def test_parser_counts_placeholders_in_order():
    stmt, count = parse_statement_with_params(
        "SELECT id FROM t WHERE v > ? AND w = ? OR id = ?"
    )
    assert count == 3

    markers = []

    def collect(expr):
        if isinstance(expr, Parameter):
            markers.append(expr.index)
        for attr in ("left", "right", "operand"):
            child = getattr(expr, attr, None)
            if child is not None:
                collect(child)

    collect(stmt.where)
    assert markers == [0, 1, 2]


def test_parser_zero_placeholders():
    stmt, count = parse_statement_with_params("SELECT id FROM t")
    assert count == 0


# ----------------------------------------------------------------------
# planner: params and access paths
# ----------------------------------------------------------------------
def test_pk_equality_param_plans_point_lookup():
    engine = make_engine()
    stmt, _ = parse_statement_with_params("SELECT * FROM t WHERE id = ?")
    plan = Planner(engine.catalog).plan_select(stmt, None)
    ops = list(plan.walk())
    assert any(isinstance(op, PointLookupOp) for op in ops)
    assert not any(isinstance(op, SeqScanOp) for op in ops)


def test_range_bound_param_stays_residual():
    # a `>` bound can't be merged at plan time (no value to compare);
    # it must remain a residual predicate, never a scan bound
    engine = make_engine()
    stmt, _ = parse_statement_with_params("SELECT * FROM t WHERE id > ?")
    plan = Planner(engine.catalog).plan_select(stmt, None)
    scans = [
        op for op in plan.walk() if isinstance(op, (SeqScanOp, RangeScanOp))
    ]
    for scan in scans:
        assert getattr(scan, "lo", None) is None
        assert getattr(scan, "hi", None) is None
    # the parameter comparison survives as a filter predicate
    assert "?0" in plan.explain() or "?1" in plan.explain()
    # and it evaluates correctly once bound
    rows = engine.execute("SELECT id FROM t WHERE id > ?", params=(16,)).rows
    assert [r[0] for r in rows] == [17, 18, 19]


# ----------------------------------------------------------------------
# execution: binding in every statement position
# ----------------------------------------------------------------------
def test_params_in_where_positions():
    engine = make_engine()
    assert engine.execute(
        "SELECT v FROM t WHERE id = ?", params=(4,)
    ).rows == [(20,)]
    assert engine.execute(
        "SELECT id FROM t WHERE v > ? AND w = ?", params=(80, "w2")
    ).rows == [(17,)]
    rows = engine.execute(
        "SELECT id FROM t WHERE id BETWEEN ? AND ?", params=(3, 6)
    ).rows
    assert [r[0] for r in rows] == [3, 4, 5, 6]


def test_params_in_insert_update_delete():
    engine = make_engine()
    engine.execute(
        "INSERT INTO t VALUES (?, ?, ?)", params=(50, 123, "new")
    )
    assert engine.execute(
        "SELECT v, w FROM t WHERE id = 50"
    ).rows == [(123, "new")]
    engine.execute(
        "UPDATE t SET v = ?, w = ? WHERE id = ?", params=(7, "upd", 50)
    )
    assert engine.execute(
        "SELECT v, w FROM t WHERE id = 50"
    ).rows == [(7, "upd")]
    engine.execute("DELETE FROM t WHERE id = ?", params=(50,))
    assert engine.execute("SELECT v FROM t WHERE id = 50").rows == []


def test_params_in_select_expressions():
    engine = make_engine()
    assert engine.execute(
        "SELECT id, v + ? FROM t WHERE id = ?", params=(1000, 2)
    ).rows == [(2, 1010)]


def test_null_param_comparisons_match_nothing():
    engine = make_engine()
    # SQL three-valued logic: `= NULL` is never true, including for a
    # parameter bound to None — and including on the point-lookup path
    assert engine.execute(
        "SELECT id FROM t WHERE v = ?", params=(None,)
    ).rows == []
    assert engine.execute(
        "SELECT id FROM t WHERE id = ?", params=(None,)
    ).rows == []


def test_null_param_inserts_null():
    engine = make_engine()
    engine.execute("INSERT INTO t VALUES (?, ?, ?)", params=(60, None, None))
    assert engine.execute(
        "SELECT id FROM t WHERE v IS NULL"
    ).rows == [(60,)]


def test_same_shape_different_values_share_one_plan():
    engine = make_engine()
    results = [
        engine.execute("SELECT v FROM t WHERE id = ?", params=(i,)).rows
        for i in range(8)
    ]
    assert results == [[(i * 5,)] for i in range(8)]
    hits = engine.obs.counter("sql.plan_cache_hits").value
    assert hits == 7


def test_unbound_statement_with_placeholders_rejected():
    engine = make_engine()
    with pytest.raises(ExecutionError):
        engine.execute("SELECT v FROM t WHERE id = ?")


# ----------------------------------------------------------------------
# the trust boundary: params ride inside the query MAC
# ----------------------------------------------------------------------
def build_db():
    db = VeriDB(VeriDBConfig(key_seed=11))
    db.sql("CREATE TABLE kv (k INTEGER PRIMARY KEY, v INTEGER)")
    for i in range(10):
        db.sql(f"INSERT INTO kv VALUES ({i}, {i * 10})")
    return db


def test_client_round_trip_with_params():
    db = build_db()
    client = db.connect("alice")
    result = client.execute("SELECT v FROM kv WHERE k = ?", params=(3,))
    assert result.rows == ((30,),)
    assert result.verified
    # a second binding of the same shape is a fresh qid, fresh result
    assert client.execute(
        "SELECT v FROM kv WHERE k = ?", params=(7,)
    ).rows == ((70,),)


def test_host_cannot_substitute_params():
    """Swapping the bound values after MACing must fail authentication."""
    db = build_db()
    mac = MessageAuthenticator(db.enclave.keychain.mac_key)
    qid = bytes(16)
    sql = "SELECT v FROM kv WHERE k = ?"
    tag = mac.tag(qid, sql.encode("utf-8"), RecordCodec().encode((3,)))
    tampered = AuthenticatedQuery(
        qid=qid, sql=sql, mac=tag, params=(9,)
    )
    with pytest.raises(AuthenticationError):
        db.portal.submit(tampered)


def test_host_cannot_strip_params():
    """Dropping the bound values entirely must also fail: the MAC
    domain-separates a parameterless query from a parameterized one."""
    db = build_db()
    mac = MessageAuthenticator(db.enclave.keychain.mac_key)
    qid = bytes(16)
    sql = "SELECT v FROM kv WHERE k = 3"
    tag = mac.tag(qid, sql.encode("utf-8"), RecordCodec().encode((3,)))
    stripped = AuthenticatedQuery(qid=qid, sql=sql, mac=tag, params=None)
    with pytest.raises(AuthenticationError):
        db.portal.submit(stripped)


def test_service_layer_passes_params_through():
    from repro.obs import scoped_registry
    from repro.service import QueryService, ServiceConfig

    with scoped_registry(MetricsRegistry()) as reg:
        service = QueryService(
            build_db(), ServiceConfig(max_workers=2), registry=reg
        )
        try:
            client = service.connect(service.register_tenant("acme"))
            result = client.execute(
                "SELECT v FROM kv WHERE k = ?", params=(5,)
            )
            assert result.rows == ((50,),)
            assert result.verified
        finally:
            service.close()
