"""EXPLAIN ANALYZE and per-query trace attribution (system-level).

Pins the tentpole invariant: the per-operator stats a traced query
reports must sum (exactly, for counted costs) to the deltas the
process-wide ``repro.obs`` registry saw for that query — and two queries
interleaving on one database must report disjoint, correctly-attributed
stats.
"""

import threading

import pytest

from repro.core.config import VeriDBConfig
from repro.core.database import VeriDB
from repro.errors import ConfigurationError
from repro.obs import (
    MetricsRegistry,
    scoped_event_sink,
    scoped_registry,
)
from repro.obs import trace_context as tc_module
from repro.storage.config import StorageConfig
from repro.workloads.tpch import QUERIES, load_tpch

#: the counted (non-wall-clock) costs whose trace totals must equal the
#: registry deltas exactly: (registry counter name, OpStats field)
COUNTED = (
    ("memory.verified_reads", "verified_reads"),
    ("memory.cache_hits", "cache_hits"),
    ("memory.cache_misses", "cache_misses"),
    ("sgx.ecalls", "ecalls"),
    ("sgx.batched_read_crossings", "batched_read_crossings"),
    ("sgx.epc_swaps", "epc_swaps"),
    ("sgx.simulated_cycles", "simulated_cycles"),
)


def counter_value(snapshot: dict, name: str) -> float:
    return snapshot.get(name, {}).get("value", 0)


def build_db(registry, cache_bytes=0, trace_sample_rate=0.0) -> VeriDB:
    return VeriDB(
        VeriDBConfig(
            key_seed=11,
            storage=StorageConfig(cache_bytes=cache_bytes),
            trace_sample_rate=trace_sample_rate,
        ),
        registry=registry,
    )


# ----------------------------------------------------------------------
# the sum property on a TPC-H join
# ----------------------------------------------------------------------
def test_tpch_join_operator_stats_sum_to_registry_deltas():
    reg = MetricsRegistry()
    with scoped_registry(reg):
        db = VeriDB(VeriDBConfig(key_seed=20))
        load_tpch(db, scale_factor=0.0002, seed=1)
        before = reg.snapshot()
        result = db.explain_analyze(QUERIES["Q19"])
        after = reg.snapshot()

    totals = result.totals()
    for counter_name, field in COUNTED:
        delta = counter_value(after, counter_name) - counter_value(
            before, counter_name
        )
        assert totals[field] == delta, (
            f"{field}: trace total {totals[field]} != "
            f"registry delta {delta} ({counter_name})"
        )
    # the join actually exercised the verified read path
    assert totals["verified_reads"] > 0
    assert totals["simulated_cycles"] > 0
    # per-operator wall times stay within the query's elapsed wall clock
    assert sum(f.wall_seconds for f in result.trace.frames()) <= (
        result.trace.elapsed * 1.05 + 1e-6
    )


def test_explain_analyze_reports_per_operator_attribution():
    reg = MetricsRegistry()
    with scoped_registry(reg):
        db = build_db(reg)
        db.sql("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
        db.sql("CREATE TABLE u (id INT PRIMARY KEY, tid INT)")
        db.load_rows("t", [(i, i * 2) for i in range(60)])
        db.load_rows("u", [(i, i % 10) for i in range(60)])
        result = db.explain_analyze(
            "SELECT t.id, u.id FROM t, u WHERE t.id = u.tid"
        )

    data = result.data
    assert data["plan"] is not None
    # collect the plan tree's nodes
    nodes = []

    def walk(node):
        nodes.append(node)
        for child in node["children"]:
            walk(child)

    walk(data["plan"])
    scans = [n for n in nodes if n["op"] == "SeqScanOp"]
    assert len(scans) == 2
    for scan in scans:
        assert scan["verified_reads"] > 0
        assert scan["batched_read_crossings"] > 0
        assert scan["simulated_cycles"] > 0
        assert scan["rows_out"] == 60
    # non-leaf operators did not read storage themselves
    join = next(n for n in nodes if "Join" in n["op"])
    assert join["verified_reads"] == 0
    # machine-readable and human forms agree on the totals
    assert data["totals"]["verified_reads"] == result.totals()["verified_reads"]
    text = result.text
    assert "SeqScan" in text
    assert "reads=" in text and "cache=" in text and "cycles=" in text
    assert "totals:" in text


def test_explain_analyze_rows_match_plain_execution():
    reg = MetricsRegistry()
    with scoped_registry(reg):
        db = build_db(reg)
        db.sql("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
        db.load_rows("t", [(i, i * 3) for i in range(30)])
        plain = db.sql("SELECT id, v FROM t WHERE v > 30")
        analyzed = db.explain_analyze("SELECT id, v FROM t WHERE v > 30")
    assert analyzed.rows == plain.rows
    assert analyzed.columns == plain.columns


# ----------------------------------------------------------------------
# fused columnar pipelines keep the attribution exact
# ----------------------------------------------------------------------
def test_fused_pipeline_stats_sum_to_registry_deltas():
    """Scan→filter→project fusion must not lose or double-count costs.

    The fused node does the filter+project work (and owns that lap);
    the scan stays its child and owns every verified read. The sum
    property over the whole tree must still hold exactly.
    """
    reg = MetricsRegistry()
    with scoped_registry(reg):
        db = build_db(reg)
        db.sql("CREATE TABLE t (id INT PRIMARY KEY, v INT, w INT)")
        db.load_rows("t", [(i, i * 3 % 40, i % 6) for i in range(90)])
        before = reg.snapshot()
        result = db.explain_analyze(
            "SELECT id, v + w FROM t WHERE v > 5 AND w <> 2"
        )
        after = reg.snapshot()

    totals = result.totals()
    for counter_name, field in COUNTED:
        delta = counter_value(after, counter_name) - counter_value(
            before, counter_name
        )
        assert totals[field] == delta, (
            f"{field}: trace total {totals[field]} != "
            f"registry delta {delta} ({counter_name})"
        )

    nodes = []

    def walk(node):
        nodes.append(node)
        for child in node["children"]:
            walk(child)

    walk(result.data["plan"])
    fused = next(n for n in nodes if n["op"] == "FusedScanFilterProjectOp")
    scan = next(n for n in nodes if n["op"] == "SeqScanOp")
    # the scan is the fused node's child and owns all storage reads
    assert scan in fused["children"]
    assert scan["verified_reads"] > 0
    assert fused["verified_reads"] == 0
    # the fused node did the filtering: fewer rows out than the scan fed
    assert scan["rows_out"] == 90
    assert 0 < fused["rows_out"] < 90
    # both stages show up in the rendered plan
    assert "FusedScanFilterProject" in result.text
    assert "SeqScan" in result.text
    # the fused-batch counter attributes the pipeline's work
    assert counter_value(after, "sql.fused_pipeline_batches") > counter_value(
        before, "sql.fused_pipeline_batches"
    )


# ----------------------------------------------------------------------
# interleaved queries attribute disjointly
# ----------------------------------------------------------------------
def test_interleaved_queries_report_disjoint_stats():
    """Two queries racing on one database split every cost correctly.

    Thread A runs a scan-heavy join over t1 (batched verified reads);
    thread B runs repeated point lookups on t2 (record-cache hits). The
    registry sees the union; each trace must see exactly its own share —
    so the two totals must sum to the registry deltas, and each trace
    must carry the signature of its own workload.
    """
    reg = MetricsRegistry()
    with scoped_registry(reg):
        db = build_db(reg, cache_bytes=1 << 20)
        db.sql("CREATE TABLE t1 (id INT PRIMARY KEY, grp INT)")
        db.sql("CREATE TABLE t2 (id INT PRIMARY KEY, v INT)")
        db.load_rows("t1", [(i, i % 5) for i in range(80)])
        db.load_rows("t2", [(i, i * 7) for i in range(20)])
        # warm t2's record cache so B's lookups hit
        for i in range(20):
            db.sql(f"SELECT * FROM t2 WHERE id = {i}")

        barrier = threading.Barrier(2)
        outcomes = {}

        def scan_join():
            barrier.wait()
            outcomes["A"] = db.explain_analyze(
                "SELECT a.id, b.id FROM t1 a, t1 b WHERE a.grp = b.grp"
            )

        def point_lookups():
            barrier.wait()
            results = []
            for _ in range(3):
                for i in range(20):
                    results.append(
                        db.explain_analyze(f"SELECT v FROM t2 WHERE id = {i}")
                    )
            outcomes["B"] = results

        before = reg.snapshot()
        threads = [
            threading.Thread(target=scan_join),
            threading.Thread(target=point_lookups),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        after = reg.snapshot()

    totals_a = outcomes["A"].totals()
    totals_b = {field: 0 for _, field in COUNTED}
    for r in outcomes["B"]:
        for _, field in COUNTED:
            totals_b[field] += r.totals()[field]

    # the union is exactly the registry's delta, split with no leakage
    for counter_name, field in COUNTED:
        delta = counter_value(after, counter_name) - counter_value(
            before, counter_name
        )
        assert totals_a[field] + totals_b[field] == delta, (
            f"{field}: {totals_a[field]} + {totals_b[field]} != {delta}"
        )
    # workload signatures landed on the right trace
    assert totals_a["batched_read_crossings"] > 0
    # the scans covered t1 — from verified storage or the record cache
    assert totals_a["verified_reads"] + totals_a["cache_hits"] >= 80
    assert totals_b["cache_hits"] >= 60  # warmed point lookups hit
    # B's lookups never scanned: each read at most a handful of cells
    assert totals_b["verified_reads"] <= len(outcomes["B"]) * 5


# ----------------------------------------------------------------------
# portal sampling
# ----------------------------------------------------------------------
def run_client_queries(db, n):
    client = db.connect("sampler")
    for i in range(n):
        client.execute(f"SELECT * FROM t WHERE id = {i % 10}")


def test_portal_sampling_rate_zero_never_traces():
    reg = MetricsRegistry()
    with scoped_registry(reg):
        db = build_db(reg, trace_sample_rate=0.0)
        db.sql("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
        db.load_rows("t", [(i, i) for i in range(10)])
        run_client_queries(db, 8)
    assert counter_value(reg.snapshot(), "portal.traces_sampled") == 0


def test_portal_sampling_rate_one_traces_every_query():
    reg = MetricsRegistry()
    with scoped_registry(reg):
        db = build_db(reg, trace_sample_rate=1.0)
        db.sql("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
        db.load_rows("t", [(i, i) for i in range(10)])
        with scoped_event_sink() as sink:
            run_client_queries(db, 6)
    assert counter_value(reg.snapshot(), "portal.traces_sampled") == 6
    events = sink.events_of("query_trace")
    assert len(events) == 6
    for event in events:
        assert event["totals"]["verified_reads"] > 0
        assert event["verified"] is True


def test_portal_sampling_is_deterministic_fraction():
    reg = MetricsRegistry()
    with scoped_registry(reg):
        db = build_db(reg, trace_sample_rate=0.25)
        db.sql("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
        db.load_rows("t", [(i, i) for i in range(10)])
        run_client_queries(db, 8)
    # exactly every fourth query is traced
    assert counter_value(reg.snapshot(), "portal.traces_sampled") == 2


def test_trace_sample_rate_validated():
    with pytest.raises(ConfigurationError):
        VeriDBConfig(trace_sample_rate=1.5)
    with pytest.raises(ConfigurationError):
        VeriDBConfig(trace_sample_rate=-0.1)


# ----------------------------------------------------------------------
# the zero-cost guarantee, end to end
# ----------------------------------------------------------------------
def test_untraced_query_never_reads_trace_contextvar(monkeypatch):
    """With no trace active, a full query touches no trace machinery.

    The gate is one module-global integer compare; poisoning the
    ContextVar proves no hot-path component reaches past it when
    sampling is off.
    """

    class Poisoned:
        def get(self):  # pragma: no cover - failure path
            raise AssertionError("trace ContextVar read on untraced path")

    reg = MetricsRegistry()
    with scoped_registry(reg):
        db = build_db(reg, cache_bytes=1 << 20)
        db.sql("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
        db.load_rows("t", [(i, i) for i in range(40)])
        monkeypatch.setattr(tc_module, "_current", Poisoned())
        result = db.sql("SELECT * FROM t WHERE v > 10")
        assert result.rowcount == 29
        client = db.connect("untraced")
        client.execute("SELECT * FROM t WHERE id = 3")
