"""Unit tests for expression compilation and NULL semantics."""

import pytest

from repro.errors import PlanningError
from repro.sql.ast_nodes import (
    Aggregate,
    Between,
    BinaryOp,
    ColumnRef,
    InList,
    IsNull,
    Like,
    Literal,
    UnaryOp,
)
from repro.sql.expressions import (
    RowSchema,
    compile_expr,
    compile_predicate,
    find_aggregates,
    referenced_columns,
    split_conjuncts,
    substitute,
)

SCHEMA = RowSchema([("t", "a"), ("t", "b"), ("u", "a")])


def ev(expr, row=(1, 2, 3)):
    return compile_expr(expr, SCHEMA)(row)


def test_literal_and_column():
    assert ev(Literal(42)) == 42
    assert ev(ColumnRef("b")) == 2
    assert ev(ColumnRef("a", "t")) == 1
    assert ev(ColumnRef("a", "u")) == 3


def test_ambiguous_column():
    with pytest.raises(PlanningError):
        compile_expr(ColumnRef("a"), SCHEMA)


def test_unknown_column():
    with pytest.raises(PlanningError):
        compile_expr(ColumnRef("zz"), SCHEMA)


def test_arithmetic():
    assert ev(BinaryOp("+", ColumnRef("b"), Literal(5))) == 7
    assert ev(BinaryOp("*", ColumnRef("b"), ColumnRef("a", "u"))) == 6
    assert ev(BinaryOp("-", Literal(10), ColumnRef("b"))) == 8
    assert ev(BinaryOp("%", Literal(7), Literal(3))) == 1


def test_integer_division_stays_exact():
    assert ev(BinaryOp("/", Literal(6), Literal(3))) == 2
    assert isinstance(ev(BinaryOp("/", Literal(6), Literal(3))), int)
    assert ev(BinaryOp("/", Literal(7), Literal(2))) == 3.5


def test_division_by_zero():
    with pytest.raises(ZeroDivisionError):
        ev(BinaryOp("/", Literal(1), Literal(0)))


def test_comparisons():
    assert ev(BinaryOp("<", ColumnRef("b"), Literal(5))) is True
    assert ev(BinaryOp(">=", ColumnRef("b"), Literal(5))) is False
    assert ev(BinaryOp("!=", ColumnRef("b"), Literal(2))) is False


def test_null_propagates():
    row = (None, None, 3)
    assert ev(BinaryOp("+", ColumnRef("a", "t"), Literal(1)), row) is None
    assert ev(BinaryOp("=", ColumnRef("a", "t"), Literal(1)), row) is None
    assert ev(UnaryOp("NEG", ColumnRef("a", "t")), row) is None


def test_three_valued_and_or():
    null = Literal(None)
    true, false = Literal(True), Literal(False)
    assert ev(BinaryOp("AND", null, false)) is False
    assert ev(BinaryOp("AND", null, true)) is None
    assert ev(BinaryOp("OR", null, true)) is True
    assert ev(BinaryOp("OR", null, false)) is None
    assert ev(UnaryOp("NOT", null)) is None


def test_predicate_null_is_false():
    pred = compile_predicate(BinaryOp("=", ColumnRef("b"), Literal(None)), SCHEMA)
    assert pred((1, 2, 3)) is False


def test_is_null():
    assert ev(IsNull(ColumnRef("a", "t")), (None, 2, 3)) is True
    assert ev(IsNull(ColumnRef("a", "t"), negated=True), (None, 2, 3)) is False


def test_in_list():
    expr = InList(ColumnRef("b"), (Literal(1), Literal(2)))
    assert ev(expr) is True
    assert ev(InList(ColumnRef("b"), (Literal(9),))) is False
    assert ev(InList(ColumnRef("b"), (Literal(9),), negated=True)) is True
    assert ev(InList(Literal(None), (Literal(1),))) is None


def test_between():
    assert ev(Between(ColumnRef("b"), Literal(1), Literal(3))) is True
    assert ev(Between(ColumnRef("b"), Literal(3), Literal(9))) is False
    assert ev(Between(ColumnRef("b"), Literal(3), Literal(9), negated=True)) is True


def test_like():
    schema = RowSchema([(None, "s")])
    fn = compile_expr(Like(ColumnRef("s"), "ab%"), schema)
    assert fn(("abc",)) is True
    assert fn(("xabc",)) is False
    fn = compile_expr(Like(ColumnRef("s"), "a_c"), schema)
    assert fn(("abc",)) is True
    assert fn(("abbc",)) is False
    fn = compile_expr(Like(ColumnRef("s"), "50%"), schema)
    assert fn(("50 percent",)) is True


def test_like_escapes_regex_metachars():
    schema = RowSchema([(None, "s")])
    fn = compile_expr(Like(ColumnRef("s"), "a.c"), schema)
    assert fn(("a.c",)) is True
    assert fn(("abc",)) is False


def test_aggregate_outside_grouping_rejected():
    with pytest.raises(PlanningError):
        compile_expr(Aggregate("SUM", ColumnRef("b")), SCHEMA)


def test_split_conjuncts():
    expr = BinaryOp(
        "AND",
        BinaryOp("AND", Literal(1), Literal(2)),
        Literal(3),
    )
    assert split_conjuncts(expr) == [Literal(1), Literal(2), Literal(3)]
    assert split_conjuncts(None) == []


def test_referenced_columns():
    expr = BinaryOp(
        "+", ColumnRef("a", "t"), Between(ColumnRef("b"), Literal(1), Literal(2))
    )
    assert referenced_columns(expr) == {ColumnRef("a", "t"), ColumnRef("b")}


def test_find_aggregates():
    expr = BinaryOp(
        "/", Aggregate("SUM", ColumnRef("b")), Aggregate("COUNT", None)
    )
    assert find_aggregates(expr) == [
        Aggregate("SUM", ColumnRef("b")),
        Aggregate("COUNT", None),
    ]


def test_substitute():
    agg = Aggregate("SUM", ColumnRef("b"))
    expr = BinaryOp(">", agg, Literal(10))
    rewritten = substitute(expr, {agg: ColumnRef("__a0")})
    assert rewritten == BinaryOp(">", ColumnRef("__a0"), Literal(10))
