"""Order-preserving scans: redundant sorts are elided."""

import pytest

from repro.catalog.catalog import Catalog
from repro.sql.executor import QueryEngine
from repro.storage.engine import StorageEngine


@pytest.fixture
def engine():
    qe = QueryEngine(Catalog(), StorageEngine())
    qe.execute(
        "CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER NOT NULL, "
        "note TEXT, CHAIN (v))"
    )
    for i in range(40):
        qe.execute(f"INSERT INTO t VALUES ({i}, {(i * 13) % 17}, 'n{i}')")
    return qe


def test_order_by_pk_elides_sort(engine):
    result = engine.execute("SELECT * FROM t ORDER BY id")
    assert "Sort" not in result.explain()
    assert [r[0] for r in result.rows] == list(range(40))


def test_order_by_pk_with_range_scan(engine):
    result = engine.execute(
        "SELECT id FROM t WHERE id BETWEEN 5 AND 25 ORDER BY id"
    )
    assert "Sort" not in result.explain()
    assert [r[0] for r in result.rows] == list(range(5, 26))


def test_order_by_chain_column_elides_sort(engine):
    result = engine.execute(
        "SELECT v, id FROM t WHERE v BETWEEN 2 AND 9 ORDER BY v, id"
    )
    assert "Sort" not in result.explain()
    rows = result.rows
    assert rows == sorted(rows)


def test_order_by_chain_column_prefix(engine):
    result = engine.execute("SELECT v FROM t WHERE v >= 3 ORDER BY v")
    assert "Sort" not in result.explain()
    values = [r[0] for r in result.rows]
    assert values == sorted(values)


def test_descending_still_sorts(engine):
    result = engine.execute("SELECT id FROM t ORDER BY id DESC")
    assert "Sort" in result.explain() or "TopN" in result.explain()
    assert [r[0] for r in result.rows] == list(range(39, -1, -1))


def test_unrelated_column_still_sorts(engine):
    result = engine.execute("SELECT note FROM t ORDER BY note")
    assert "Sort" in result.explain()


def test_order_preserved_through_filter(engine):
    result = engine.execute(
        "SELECT id FROM t WHERE note LIKE 'n1%' ORDER BY id"
    )
    assert "Sort" not in result.explain()
    values = [r[0] for r in result.rows]
    assert values == sorted(values)


def test_elision_with_limit_uses_plain_limit(engine):
    result = engine.execute("SELECT id FROM t ORDER BY id LIMIT 5")
    explain = result.explain()
    assert "TopN" not in explain and "Sort" not in explain
    assert "Limit" in explain
    assert [r[0] for r in result.rows] == [0, 1, 2, 3, 4]


def test_join_destroys_order(engine):
    engine.execute("CREATE TABLE u (id INTEGER PRIMARY KEY)")
    engine.execute("INSERT INTO u VALUES (1), (2)")
    result = engine.execute(
        "SELECT t.id FROM t, u WHERE t.v = u.id ORDER BY t.id",
        join_hint="hash",
    )
    assert "Sort" in result.explain() or "TopN" in result.explain()
    values = [r[0] for r in result.rows]
    assert values == sorted(values)


def test_secondary_equality_scan_ordered_by_pk_tiebreak(engine):
    """A secondary-chain point range is ordered by (value, pk): with the
    value fixed, ORDER BY pk is satisfied... only as the second ordering
    component, so the planner must still sort (prefix mismatch)."""
    result = engine.execute("SELECT id FROM t WHERE v = 5 ORDER BY id")
    # conservative: ordering prefix is (v, id), ORDER BY id alone is not
    # a prefix match, so a sort remains — correctness over cleverness
    values = [r[0] for r in result.rows]
    assert values == sorted(values)
