"""Unit tests for statement table-analysis and the lock registry."""

from repro.sql.parser import parse_statement
from repro.sql.session import TxnLockRegistry, tables_touched


def touched(sql):
    return sorted(set(t.lower() for t in tables_touched(parse_statement(sql))))


def test_select_tables():
    assert touched("SELECT * FROM a, b WHERE a.x = b.y") == ["a", "b"]


def test_join_tables():
    assert touched("SELECT 1 FROM a JOIN b ON a.x = b.y LEFT JOIN c ON 1=1") == [
        "a",
        "b",
        "c",
    ]


def test_subquery_tables():
    assert touched(
        "SELECT * FROM a WHERE x IN (SELECT y FROM b WHERE z = "
        "(SELECT MAX(w) FROM c))"
    ) == ["a", "b", "c"]


def test_exists_subquery_tables():
    assert touched(
        "SELECT * FROM a WHERE EXISTS (SELECT 1 FROM b)"
    ) == ["a", "b"]


def test_select_list_subquery_tables():
    assert touched("SELECT (SELECT MAX(x) FROM b) FROM a") == ["a", "b"]


def test_insert_tables():
    assert touched("INSERT INTO a VALUES (1)") == ["a"]
    assert touched("INSERT INTO a SELECT * FROM b") == ["a", "b"]


def test_update_tables():
    assert touched(
        "UPDATE a SET x = (SELECT MAX(y) FROM b) WHERE z IN (SELECT w FROM c)"
    ) == ["a", "b", "c"]


def test_delete_tables():
    assert touched("DELETE FROM a WHERE x IN (SELECT y FROM b)") == ["a", "b"]


def test_having_and_order_subqueries():
    assert touched(
        "SELECT x, COUNT(*) FROM a GROUP BY x "
        "HAVING COUNT(*) > (SELECT MIN(n) FROM b) "
        "ORDER BY (SELECT MAX(m) FROM c)"
    ) == ["a", "b", "c"]


def test_registry_same_lock_case_insensitive():
    registry = TxnLockRegistry()
    assert registry.lock_for("Orders") is registry.lock_for("orders")
    assert registry.lock_for("a") is not registry.lock_for("b")
