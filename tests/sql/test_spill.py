"""Tests for intermediate-state spilling to verifiable storage (§5.4)."""

import pytest

from repro.catalog.catalog import Catalog
from repro.sgx.epc import EnclavePageCache
from repro.sql.executor import QueryEngine
from repro.sql.spill import SpillManager, external_sort
from repro.storage.config import StorageConfig
from repro.storage.engine import StorageEngine


@pytest.fixture
def manager():
    return SpillManager(StorageEngine(), threshold_rows=10)


# ----------------------------------------------------------------------
# SpillBuffer
# ----------------------------------------------------------------------
def test_small_buffer_stays_in_enclave(manager):
    buffer = manager.buffer()
    buffer.extend([(i,) for i in range(5)])
    assert not buffer.spilled
    assert list(buffer) == [(i,) for i in range(5)]
    assert len(buffer) == 5


def test_overflow_spills_to_storage(manager):
    buffer = manager.buffer()
    buffer.extend([(i, f"v{i}") for i in range(25)])
    assert buffer.spilled
    assert buffer.rows_in_enclave == 10
    assert len(buffer) == 25
    assert list(buffer) == [(i, f"v{i}") for i in range(25)]
    assert manager.stats.rows_spilled == 15


def test_spilled_rows_travel_through_verified_path(manager):
    buffer = manager.buffer()
    buffer.extend([(i,) for i in range(30)])
    prf_before = manager.engine.vmem.prf.calls
    list(buffer)
    # reading the overflow is a verified sequential scan: PRF work happened
    assert manager.engine.vmem.prf.calls > prf_before


def test_repeated_iteration(manager):
    buffer = manager.buffer()
    buffer.extend([(i,) for i in range(15)])
    assert list(buffer) == list(buffer)


def test_close_releases_pages(manager):
    buffer = manager.buffer()
    buffer.extend([(i,) for i in range(30)])
    pages_before = len(manager.engine.vmem.registered_pages())
    buffer.close()
    assert len(manager.engine.vmem.registered_pages()) < pages_before
    with pytest.raises(RuntimeError):
        buffer.append((1,))
    buffer.close()  # idempotent
    manager.engine.verify_now()  # retirement was balanced


def test_epc_accounting():
    epc = EnclavePageCache()
    manager = SpillManager(StorageEngine(), threshold_rows=10, epc=epc)
    buffer = manager.buffer()
    buffer.extend([(i,) for i in range(50)])
    # only the in-enclave portion is charged to the EPC
    assert epc.resident_bytes == 10 * manager.row_bytes_estimate
    buffer.close()
    assert epc.resident_bytes == 0


def test_threshold_validation():
    with pytest.raises(ValueError):
        SpillManager(StorageEngine(), threshold_rows=0)


def test_spill_values_preserved_exactly(manager):
    import datetime

    rows = [
        (1, "text", 2.5, None, True, datetime.date(2021, 6, 20)),
        (2, "", -1.0, False, None, datetime.date(1992, 1, 1)),
    ] * 12
    buffer = manager.buffer()
    for i, row in enumerate(rows):
        buffer.append((i,) + row)
    assert [r[1:] for r in buffer] == rows


# ----------------------------------------------------------------------
# external sort
# ----------------------------------------------------------------------
def test_external_sort_matches_sorted(manager):
    rows = [(i * 7919 % 100, i) for i in range(100)]
    result = list(external_sort(iter(rows), lambda r: r[0], manager))
    assert [r[0] for r in result] == sorted(r[0] for r in rows)
    assert manager.stats.sort_runs == 10


def test_external_sort_reverse(manager):
    rows = [(i % 13,) for i in range(40)]
    result = list(
        external_sort(iter(rows), lambda r: r[0], manager, reverse=True)
    )
    assert [r[0] for r in result] == sorted(
        (r[0] for r in rows), reverse=True
    )


def test_external_sort_empty(manager):
    assert list(external_sort(iter(()), lambda r: r, manager)) == []


def test_external_sort_single_run(manager):
    rows = [(3,), (1,), (2,)]
    assert list(external_sort(iter(rows), lambda r: r[0], manager)) == [
        (1,),
        (2,),
        (3,),
    ]


def test_external_sort_closes_runs(manager):
    rows = [(i,) for i in range(100, 0, -1)]
    list(external_sort(iter(rows), lambda r: r[0], manager))
    assert manager.engine.vmem.registered_pages() == []
    manager.engine.verify_now()


# ----------------------------------------------------------------------
# end-to-end through SQL
# ----------------------------------------------------------------------
@pytest.fixture
def spilling_engine():
    storage = StorageEngine(StorageConfig(spill_threshold_rows=8))
    qe = QueryEngine(Catalog(), storage)
    qe.execute(
        "CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER, w INTEGER)"
    )
    for i in range(60):
        qe.execute(f"INSERT INTO t VALUES ({i}, {i * 37 % 50}, {i % 4})")
    return qe


def test_sorted_query_with_spill(spilling_engine):
    result = spilling_engine.execute("SELECT v FROM t ORDER BY v")
    values = [r[0] for r in result.rows]
    assert values == sorted(values)
    assert len(values) == 60
    assert spilling_engine.spill.stats.sort_runs > 1


def test_sort_desc_with_spill(spilling_engine):
    result = spilling_engine.execute("SELECT v FROM t ORDER BY v DESC")
    values = [r[0] for r in result.rows]
    assert values == sorted(values, reverse=True)


def test_mixed_direction_sort_with_spill(spilling_engine):
    result = spilling_engine.execute("SELECT w, v FROM t ORDER BY w ASC, v DESC")
    rows = result.rows
    assert rows == sorted(rows, key=lambda r: (r[0], -r[1]))


def test_merge_join_with_spill(spilling_engine):
    spilling_engine.execute(
        "CREATE TABLE u (id INTEGER PRIMARY KEY, v INTEGER)"
    )
    for i in range(20):
        spilling_engine.execute(f"INSERT INTO u VALUES ({i}, {i})")
    merge = spilling_engine.execute(
        "SELECT t.id FROM t, u WHERE t.v = u.v", join_hint="merge"
    )
    hash_result = spilling_engine.execute(
        "SELECT t.id FROM t, u WHERE t.v = u.v", join_hint="hash"
    )
    assert sorted(merge.rows) == sorted(hash_result.rows)


def test_nested_loop_join_with_spill(spilling_engine):
    spilling_engine.execute(
        "CREATE TABLE u (id INTEGER PRIMARY KEY, v INTEGER)"
    )
    for i in range(20):
        spilling_engine.execute(f"INSERT INTO u VALUES ({i}, {i})")
    nested = spilling_engine.execute(
        "SELECT t.id FROM t, u WHERE t.v = u.v", join_hint="nested_loop"
    )
    hash_result = spilling_engine.execute(
        "SELECT t.id FROM t, u WHERE t.v = u.v", join_hint="hash"
    )
    assert sorted(nested.rows) == sorted(hash_result.rows)
    assert spilling_engine.spill.stats.buffers_spilled > 0


def test_spill_tables_cleaned_up_after_queries(spilling_engine):
    pages_before = len(spilling_engine.storage.vmem.registered_pages())
    spilling_engine.execute("SELECT v FROM t ORDER BY v")
    pages_after = len(spilling_engine.storage.vmem.registered_pages())
    assert pages_after == pages_before
    spilling_engine.storage.verify_now()


def test_spill_and_verification_coexist(spilling_engine):
    spilling_engine.storage.enable_continuous_verification(20)
    result = spilling_engine.execute("SELECT v FROM t ORDER BY v")
    assert len(result.rows) == 60
    spilling_engine.storage.disable_continuous_verification()
    spilling_engine.storage.verify_now()


# ----------------------------------------------------------------------
# spilled results are byte-identical to in-memory results at every
# batch size: the columnar→row boundary at the spill buffer hands the
# same row tuples to storage that in-enclave execution would keep
# ----------------------------------------------------------------------
def _build_engine(batch_size, spill_threshold_rows):
    storage = StorageEngine(
        StorageConfig(
            batch_size=batch_size,
            spill_threshold_rows=spill_threshold_rows,
        )
    )
    qe = QueryEngine(Catalog(), storage)
    qe.execute(
        "CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER, w TEXT)"
    )
    qe.execute("CREATE TABLE u (id INTEGER PRIMARY KEY, v INTEGER)")
    for i in range(60):
        qe.execute(
            f"INSERT INTO t VALUES ({i}, {i * 37 % 50}, "
            f"{'NULL' if i % 7 == 0 else repr(f's{i % 5}')})"
        )
    for i in range(20):
        qe.execute(f"INSERT INTO u VALUES ({i}, {i})")
    return qe

SPILL_QUERIES = [
    ("SELECT v, w FROM t ORDER BY v", None),
    ("SELECT w, v FROM t WHERE v > 10 ORDER BY v DESC, id ASC", None),
    ("SELECT t.id, u.v FROM t, u WHERE t.v = u.v", "nested_loop"),
    ("SELECT t.id FROM t, u WHERE t.v = u.v ORDER BY t.id", "merge"),
]


@pytest.mark.parametrize("batch_size", [1, 7, 256])
def test_spilled_results_byte_identical_to_in_memory(batch_size):
    """Spilling is invisible: same bytes row for row, every batch size."""
    from repro.storage.record import RecordCodec

    codec = RecordCodec()
    in_memory = _build_engine(batch_size, spill_threshold_rows=None)
    spilling = _build_engine(batch_size, spill_threshold_rows=4)
    for sql, hint in SPILL_QUERIES:
        expected = in_memory.execute(sql, join_hint=hint).rows
        got = spilling.execute(sql, join_hint=hint).rows
        expected_bytes = [codec.encode(row) for row in expected]
        got_bytes = [codec.encode(row) for row in got]
        if "ORDER BY" not in sql:
            expected_bytes.sort()
            got_bytes.sort()
        assert got_bytes == expected_bytes, f"{sql} (batch={batch_size})"
    assert spilling.spill.stats.rows_spilled > 0
    spilling.storage.verify_now()
    in_memory.storage.verify_now()
