"""ColumnBatch unit tests and the fused-pipeline execution contract.

Covers the dual-backed batch (row-backed vs column-backed, lazy
derivation, validity bitmaps, authoritative-representation compaction),
the single source of truth for the engine batch size, and the
scan→filter→project fusion the planner installs over base tables.
"""

import pytest

from repro.obs import MetricsRegistry
from repro.sql import batch as batch_module
from repro.sql.batch import ColumnBatch, RowBatch, batched
from repro.storage.config import DEFAULT_BATCH_SIZE, StorageConfig


ROWS = [
    (1, "a", None),
    (2, None, 2.5),
    (3, "c", -1.0),
    (4, "d", None),
]


# ----------------------------------------------------------------------
# dual backing
# ----------------------------------------------------------------------
def test_row_backed_batch_derives_columns_lazily():
    batch = ColumnBatch.from_rows(list(ROWS))
    assert len(batch) == 4
    assert batch.width == 3
    # only the requested column is derived
    assert batch.column(1) == ["a", None, "c", "d"]
    assert batch._columns[0] is None
    assert batch._columns[2] is None
    assert batch.column(1) is batch.column(1)  # cached, not recomputed


def test_column_backed_batch_materializes_rows_once():
    batch = ColumnBatch(
        [[1, 2, 3], ["x", "y", "z"]], 3
    )
    rows = batch.to_rows()
    assert rows == [(1, "x"), (2, "y"), (3, "z")]
    # idempotent one-shot transpose: the same list object comes back
    assert batch.to_rows() is rows
    assert list(batch) == rows


def test_rows_round_trip_through_both_backings():
    row_backed = ColumnBatch.from_rows(list(ROWS))
    column_backed = ColumnBatch(
        [list(col) for col in zip(*ROWS)], len(ROWS)
    )
    assert row_backed.to_rows() == column_backed.to_rows() == ROWS
    # value-wise comparison: the NULL-free int column derived from rows
    # packs into array('q') storage (see PACK_NUMERIC), directly
    # constructed columns stay lists
    assert [list(col) for col in row_backed.columns] == [
        list(col) for col in column_backed.columns
    ]


def test_zero_width_batch_keeps_cardinality():
    batch = ColumnBatch([], 5)
    assert len(batch) == 5
    assert batch.to_rows() == [()] * 5


def test_row_batch_compat_constructor():
    batch = RowBatch(list(ROWS), ordering=(("t", "id", True),))
    assert isinstance(batch, ColumnBatch)
    assert batch.ordering == (("t", "id", True),)
    assert batch.to_rows() == ROWS


# ----------------------------------------------------------------------
# validity bitmaps
# ----------------------------------------------------------------------
def test_validity_bitmap_marks_non_null_rows():
    batch = ColumnBatch.from_rows(list(ROWS))
    assert batch.validity(0) == 0b1111
    assert batch.validity(1) == 0b1101  # row 1 is NULL
    assert batch.validity(2) == 0b0110  # rows 0 and 3 are NULL


def test_validity_bitmap_cached():
    batch = ColumnBatch([[None, 1, None]], 3)
    first = batch.validity(0)
    assert first == 0b010
    assert batch._validity[0] == first


# ----------------------------------------------------------------------
# compaction and slicing stay in the authoritative representation
# ----------------------------------------------------------------------
def test_take_mask_row_backed_reuses_tuples():
    batch = ColumnBatch.from_rows(list(ROWS))
    kept = batch.take_mask([True, False, True, False])
    assert kept.to_rows() == [ROWS[0], ROWS[2]]
    # the surviving tuples are the same objects, not rebuilt
    assert kept.to_rows()[0] is ROWS[0]


def test_take_mask_column_backed_compacts_columns():
    batch = ColumnBatch([[1, 2, 3, 4], [10, 20, 30, 40]], 4)
    kept = batch.take_mask([False, True, True, False])
    assert kept._rows is None  # still column-backed
    assert kept.column(1) == [20, 30]
    assert kept.to_rows() == [(2, 20), (3, 30)]


def test_take_mask_preserves_ordering():
    batch = ColumnBatch.from_rows(list(ROWS), ordering=(("t", "id", True),))
    assert batch.take_mask([True] * 4).ordering == (("t", "id", True),)


def test_slice_both_backings():
    row_backed = ColumnBatch.from_rows(list(ROWS))
    assert row_backed.slice(2).to_rows() == ROWS[:2]
    column_backed = ColumnBatch([[1, 2, 3], [4, 5, 6]], 3)
    sliced = column_backed.slice(2)
    assert sliced._rows is None
    assert sliced.to_rows() == [(1, 4), (2, 5)]
    # slicing past the end returns the batch itself
    assert row_backed.slice(99) is row_backed


def test_batched_chunks_and_ordering():
    batches = list(batched([(i,) for i in range(10)], 4))
    assert [len(b) for b in batches] == [4, 4, 2]
    lazy = list(batched(((i,) for i in range(5)), 2, ordering=("o",)))
    assert [len(b) for b in lazy] == [2, 2, 1]
    assert all(b.ordering == ("o",) for b in lazy)


# ----------------------------------------------------------------------
# single source of truth for the batch size
# ----------------------------------------------------------------------
def test_batch_size_has_one_source_of_truth():
    """`repro.sql.batch.DEFAULT_BATCH_SIZE` is a re-export of the
    storage-config constant, and the config default equals both — the
    regression this pins is a drift between directly-constructed
    operators and planner-stamped plans."""
    assert batch_module.DEFAULT_BATCH_SIZE is DEFAULT_BATCH_SIZE
    assert StorageConfig().batch_size == DEFAULT_BATCH_SIZE


# ----------------------------------------------------------------------
# the fused pipeline end to end
# ----------------------------------------------------------------------
def make_engine(reg):
    from repro.catalog.catalog import Catalog
    from repro.sql.executor import QueryEngine
    from repro.storage.engine import StorageEngine

    engine = QueryEngine(Catalog(), StorageEngine(registry=reg))
    engine.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)")
    for i in range(40):
        engine.execute(f"INSERT INTO t VALUES ({i}, {i * 7 % 30})")
    return engine


def test_fused_pipeline_counts_batches():
    reg = MetricsRegistry()
    engine = make_engine(reg)
    result = engine.execute("SELECT id, v FROM t WHERE v > 10")
    assert result.rowcount > 0
    assert reg.snapshot()["sql.fused_pipeline_batches"]["value"] > 0


def test_filter_only_fusion_preserves_scan_order():
    reg = MetricsRegistry()
    engine = make_engine(reg)
    # SELECT * keeps the scan's column set; the fused node is
    # filter-only and must preserve the primary-key scan order, so no
    # sort is needed and none may reorder the rows
    rows = engine.execute("SELECT * FROM t WHERE v > 10 ORDER BY id").rows
    ids = [r[0] for r in rows]
    assert ids == sorted(ids)
    unordered = engine.execute("SELECT * FROM t WHERE v > 10").rows
    assert unordered == rows  # scan order flowed through the fusion


def test_explain_shows_fused_node_and_scan():
    reg = MetricsRegistry()
    engine = make_engine(reg)
    result = engine.execute("EXPLAIN SELECT id FROM t WHERE v > 10")
    text = "\n".join(r[0] for r in result.rows)
    assert "FusedScanFilterProject" in text
    assert "SeqScan" in text


def test_fused_results_match_unfused_semantics():
    reg = MetricsRegistry()
    engine = make_engine(reg)
    # NULL-handling through the vectorized path: v + NULL is NULL,
    # NULL comparisons are UNKNOWN and filtered out
    engine.execute("INSERT INTO t VALUES (100, NULL)")
    rows = engine.execute("SELECT id, v + 1 FROM t WHERE v >= 28").rows
    expected = [
        (i, i * 7 % 30 + 1) for i in range(40) if i * 7 % 30 >= 28
    ]
    assert sorted(rows) == sorted(expected)
    assert engine.execute("SELECT id FROM t WHERE v IS NULL").rows == [(100,)]
