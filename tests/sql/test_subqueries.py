"""Nested queries and DISTINCT (the paper's Section 3.2 extension)."""

import pytest

from repro.catalog.catalog import Catalog
from repro.errors import PlanningError
from repro.sql.executor import QueryEngine
from repro.storage.engine import StorageEngine


@pytest.fixture
def engine():
    qe = QueryEngine(Catalog(), StorageEngine())
    qe.execute(
        "CREATE TABLE emp (id INTEGER PRIMARY KEY, dept INTEGER, "
        "salary INTEGER, CHAIN (salary))"
    )
    qe.execute(
        "CREATE TABLE dept (id INTEGER PRIMARY KEY, name TEXT, "
        "budget INTEGER)"
    )
    qe.execute(
        "INSERT INTO emp VALUES (1, 10, 100), (2, 10, 200), (3, 20, 300), "
        "(4, 20, 400), (5, 30, 150)"
    )
    qe.execute(
        "INSERT INTO dept VALUES (10, 'eng', 1000), (20, 'ops', 500), "
        "(40, 'empty', 0)"
    )
    return qe


# ----------------------------------------------------------------------
# scalar subqueries
# ----------------------------------------------------------------------
def test_scalar_subquery_in_where(engine):
    result = engine.execute(
        "SELECT id FROM emp WHERE salary = (SELECT MAX(salary) FROM emp)"
    )
    assert result.rows == [(4,)]


def test_scalar_subquery_becomes_sargable(engine):
    """A resolved scalar subquery can drive an index access path."""
    result = engine.execute(
        "SELECT id FROM emp WHERE salary >= (SELECT AVG(salary) FROM emp)"
    )
    assert sorted(r[0] for r in result.rows) == [3, 4]
    assert "RangeScan" in result.explain()


def test_scalar_subquery_in_select_list(engine):
    result = engine.execute(
        "SELECT id, (SELECT COUNT(*) FROM dept) FROM emp WHERE id = 1"
    )
    assert result.rows == [(1, 3)]


def test_scalar_subquery_empty_is_null(engine):
    result = engine.execute(
        "SELECT id FROM emp WHERE salary = (SELECT budget FROM dept WHERE id = 99)"
    )
    assert result.rows == []


def test_scalar_subquery_multiple_rows_rejected(engine):
    with pytest.raises(PlanningError):
        engine.execute(
            "SELECT id FROM emp WHERE salary = (SELECT budget FROM dept)"
        )


def test_scalar_subquery_multiple_columns_rejected(engine):
    with pytest.raises(PlanningError):
        engine.execute(
            "SELECT id FROM emp WHERE salary = (SELECT id, budget FROM dept "
            "WHERE id = 10)"
        )


# ----------------------------------------------------------------------
# IN subqueries
# ----------------------------------------------------------------------
def test_in_subquery(engine):
    result = engine.execute(
        "SELECT id FROM emp WHERE dept IN (SELECT id FROM dept WHERE "
        "budget >= 500)"
    )
    assert sorted(r[0] for r in result.rows) == [1, 2, 3, 4]


def test_not_in_subquery(engine):
    result = engine.execute(
        "SELECT id FROM emp WHERE dept NOT IN (SELECT id FROM dept)"
    )
    assert result.rows == [(5,)]  # dept 30 is not in the dept table


def test_not_in_with_null_in_subquery(engine):
    """SQL semantics: NOT IN against a set containing NULL is never true."""
    engine.execute("INSERT INTO dept VALUES (50, 'null-budget', NULL)")
    result = engine.execute(
        "SELECT id FROM emp WHERE dept NOT IN (SELECT budget FROM dept)"
    )
    assert result.rows == []


def test_in_subquery_in_update(engine):
    engine.execute(
        "UPDATE emp SET salary = 0 WHERE dept IN "
        "(SELECT id FROM dept WHERE name = 'ops')"
    )
    result = engine.execute("SELECT id FROM emp WHERE salary = 0")
    assert sorted(r[0] for r in result.rows) == [3, 4]


def test_in_subquery_in_delete(engine):
    engine.execute(
        "DELETE FROM emp WHERE dept IN (SELECT id FROM dept WHERE "
        "budget < 600)"
    )
    assert engine.execute("SELECT COUNT(*) FROM emp").rows == [(3,)]


# ----------------------------------------------------------------------
# EXISTS
# ----------------------------------------------------------------------
def test_exists(engine):
    result = engine.execute(
        "SELECT COUNT(*) FROM emp WHERE EXISTS (SELECT id FROM dept "
        "WHERE budget > 900)"
    )
    assert result.rows == [(5,)]


def test_not_exists(engine):
    result = engine.execute(
        "SELECT COUNT(*) FROM emp WHERE NOT EXISTS (SELECT id FROM dept "
        "WHERE budget > 9000)"
    )
    assert result.rows == [(5,)]


def test_exists_false(engine):
    result = engine.execute(
        "SELECT id FROM emp WHERE EXISTS (SELECT id FROM dept WHERE id = 99)"
    )
    assert result.rows == []


# ----------------------------------------------------------------------
# nesting & errors
# ----------------------------------------------------------------------
def test_nested_subquery_two_levels(engine):
    result = engine.execute(
        "SELECT id FROM emp WHERE salary = (SELECT MAX(salary) FROM emp "
        "WHERE dept IN (SELECT id FROM dept WHERE name = 'eng'))"
    )
    assert result.rows == [(2,)]


def test_correlated_subquery_rejected(engine):
    """Correlated references surface as unknown columns in the inner scope."""
    with pytest.raises(PlanningError):
        engine.execute(
            "SELECT id FROM emp e WHERE salary = "
            "(SELECT MAX(budget) FROM dept WHERE dept.id = e.dept)"
        )


def test_planner_without_executor_rejects_subqueries():
    from repro.sql.parser import parse_statement
    from repro.sql.planner import Planner

    planner = Planner(Catalog())
    with pytest.raises(PlanningError):
        planner.plan_select(
            parse_statement("SELECT 1 FROM t WHERE x IN (SELECT y FROM u)")
        )


# ----------------------------------------------------------------------
# DISTINCT
# ----------------------------------------------------------------------
def test_select_distinct(engine):
    result = engine.execute("SELECT DISTINCT dept FROM emp")
    assert sorted(r[0] for r in result.rows) == [10, 20, 30]
    assert "Distinct" in result.explain()


def test_select_distinct_multi_column(engine):
    engine.execute("INSERT INTO emp VALUES (6, 10, 100)")
    result = engine.execute("SELECT DISTINCT dept, salary FROM emp")
    assert (10, 100) in result.rows
    assert len(result.rows) == 5  # (10,100) deduplicated


def test_select_distinct_star(engine):
    result = engine.execute("SELECT DISTINCT * FROM emp ORDER BY id")
    assert len(result.rows) == 5  # pk-unique rows are already distinct


def test_distinct_with_order_and_limit(engine):
    result = engine.execute(
        "SELECT DISTINCT dept FROM emp ORDER BY dept DESC LIMIT 2"
    )
    assert [r[0] for r in result.rows] == [30, 20]
