"""LEFT OUTER JOIN semantics."""

import pytest

from repro.catalog.catalog import Catalog
from repro.sql.executor import QueryEngine
from repro.storage.engine import StorageEngine


@pytest.fixture
def engine():
    qe = QueryEngine(Catalog(), StorageEngine())
    qe.execute("CREATE TABLE emp (id INTEGER PRIMARY KEY, dept INTEGER)")
    qe.execute(
        "CREATE TABLE dept (id INTEGER PRIMARY KEY, name TEXT, "
        "active INTEGER)"
    )
    qe.execute(
        "INSERT INTO emp VALUES (1, 10), (2, 20), (3, 99), (4, NULL)"
    )
    qe.execute(
        "INSERT INTO dept VALUES (10, 'eng', 1), (20, 'ops', 0), "
        "(30, 'idle', 1)"
    )
    return qe


def test_left_join_keeps_unmatched_left(engine):
    result = engine.execute(
        "SELECT e.id, d.name FROM emp e LEFT JOIN dept d ON e.dept = d.id "
        "ORDER BY e.id"
    )
    assert result.rows == [(1, "eng"), (2, "ops"), (3, None), (4, None)]


def test_left_outer_keyword_form(engine):
    result = engine.execute(
        "SELECT COUNT(*) FROM emp e LEFT OUTER JOIN dept d ON e.dept = d.id"
    )
    assert result.rows == [(4,)]


def test_on_right_condition_restricts_matching_only(engine):
    """A right-side ON predicate makes rows unmatched, not dropped."""
    result = engine.execute(
        "SELECT e.id, d.name FROM emp e LEFT JOIN dept d "
        "ON e.dept = d.id AND d.active = 1 ORDER BY e.id"
    )
    assert result.rows == [(1, "eng"), (2, None), (3, None), (4, None)]


def test_where_after_outer_join_filters_null_extended(engine):
    """WHERE on the right side applies after NULL extension."""
    result = engine.execute(
        "SELECT e.id FROM emp e LEFT JOIN dept d ON e.dept = d.id "
        "WHERE d.name = 'eng'"
    )
    assert result.rows == [(1,)]


def test_where_is_null_finds_unmatched(engine):
    result = engine.execute(
        "SELECT e.id FROM emp e LEFT JOIN dept d ON e.dept = d.id "
        "WHERE d.id IS NULL ORDER BY e.id"
    )
    assert result.rows == [(3,), (4,)]


def test_left_join_without_keys_theta(engine):
    result = engine.execute(
        "SELECT e.id, d.id FROM emp e LEFT JOIN dept d "
        "ON e.dept < d.id ORDER BY e.id, d.id"
    )
    # emp 1 (dept 10) matches depts 20,30; emp 2 matches 30;
    # emp 3 and 4 (99/NULL) match nothing -> NULL-extended
    assert result.rows == [
        (1, 20),
        (1, 30),
        (2, 30),
        (3, None),
        (4, None),
    ]


def test_left_join_aggregation(engine):
    result = engine.execute(
        "SELECT COUNT(*), COUNT(d.id) FROM emp e LEFT JOIN dept d "
        "ON e.dept = d.id"
    )
    assert result.rows == [(4, 2)]  # COUNT(col) skips the NULL-extensions


def test_inner_then_left_join(engine):
    engine.execute("CREATE TABLE loc (id INTEGER PRIMARY KEY, city TEXT)")
    engine.execute("INSERT INTO loc VALUES (10, 'SF')")
    result = engine.execute(
        "SELECT e.id, d.name, l.city FROM emp e "
        "JOIN dept d ON e.dept = d.id "
        "LEFT JOIN loc l ON d.id = l.id ORDER BY e.id"
    )
    assert result.rows == [(1, "eng", "SF"), (2, "ops", None)]


def test_left_join_explain_mentions_outer(engine):
    result = engine.execute(
        "SELECT e.id FROM emp e LEFT JOIN dept d ON e.dept = d.id"
    )
    assert "left-outer" in result.explain()


def test_left_join_cannot_lead(engine):
    from repro.errors import ParseError, PlanningError

    with pytest.raises((ParseError, PlanningError)):
        engine.execute("SELECT 1 FROM LEFT JOIN dept d ON 1 = 1")
