"""The schema-versioned plan cache: hits, invalidation, races, bounds.

Pins the prepared-statement contract: N same-shape statements cost one
parse and one plan (``sql.plan_cache_hits == N - 1``, parse/plan
counters flat after the first), any DDL invalidates every cached plan
through the catalog's schema version, and the bounded LRU never serves
a stale template — even with two sessions racing prepare/execute
against concurrent DDL.
"""

import threading

import pytest

from repro.catalog.catalog import Catalog
from repro.errors import ExecutionError
from repro.obs import MetricsRegistry
from repro.sql.executor import QueryEngine
from repro.sql.parser import parse_statement
from repro.sql.plan_cache import (
    CacheEntry,
    PlanCache,
    normalize_sql,
    statement_has_subqueries,
)
from repro.sql.session import Session
from repro.storage.config import StorageConfig
from repro.storage.engine import StorageEngine


def counter(reg, name):
    return reg.snapshot().get(name, {}).get("value", 0)


def make_engine(reg=None, **config_kwargs):
    reg = reg if reg is not None else MetricsRegistry()
    storage = StorageEngine(StorageConfig(**config_kwargs), registry=reg)
    engine = QueryEngine(Catalog(), storage)
    engine.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)")
    for i in range(20):
        engine.execute(f"INSERT INTO t VALUES ({i}, {i * 3})")
    return engine, reg


# ----------------------------------------------------------------------
# the headline contract: N same-shape queries, one parse, one plan
# ----------------------------------------------------------------------
def test_repeated_shape_hits_cache_and_skips_parse_and_plan():
    engine, reg = make_engine()
    sql = "SELECT id, v FROM t WHERE v > 12"
    n = 9
    first = engine.execute(sql).rows
    parsed_after_first = counter(reg, "sql.statements_parsed")
    planned_after_first = counter(reg, "sql.statements_planned")
    for _ in range(n - 1):
        assert engine.execute(sql).rows == first
    assert counter(reg, "sql.plan_cache_hits") == n - 1
    # the cached template really did skip the front end: no new parses,
    # no new plans after the first execution
    assert counter(reg, "sql.statements_parsed") == parsed_after_first
    assert counter(reg, "sql.statements_planned") == planned_after_first


def test_prepared_statement_executes_from_one_plan():
    engine, reg = make_engine()
    stmt = engine.prepare("SELECT v FROM t WHERE id = ?")
    assert stmt.param_count == 1
    misses_after_prepare = counter(reg, "sql.plan_cache_misses")
    parsed_after_prepare = counter(reg, "sql.statements_parsed")
    for i in range(5):
        assert stmt.execute((i,)).rows == [(i * 3,)]
    assert counter(reg, "sql.plan_cache_hits") == 5
    assert counter(reg, "sql.plan_cache_misses") == misses_after_prepare
    assert counter(reg, "sql.statements_parsed") == parsed_after_prepare


def test_differently_spaced_sql_shares_one_entry():
    engine, reg = make_engine()
    engine.execute("SELECT id FROM t WHERE v > 6")
    engine.execute("SELECT   id  FROM t\n  WHERE v > 6")
    assert counter(reg, "sql.plan_cache_hits") == 1


def test_join_hint_is_part_of_the_key():
    engine, reg = make_engine()
    engine.execute("CREATE TABLE u (id INTEGER PRIMARY KEY, v INTEGER)")
    engine.execute("INSERT INTO u VALUES (1, 3)")
    sql = "SELECT t.id FROM t, u WHERE t.v = u.v"
    hash_rows = engine.execute(sql, join_hint="hash").rows
    nested = engine.execute(sql, join_hint="nested_loop").rows
    assert sorted(hash_rows) == sorted(nested)
    assert counter(reg, "sql.plan_cache_hits") == 0
    assert engine.execute(sql, join_hint="hash").rows == hash_rows
    assert counter(reg, "sql.plan_cache_hits") == 1


# ----------------------------------------------------------------------
# DDL invalidation through the catalog schema version
# ----------------------------------------------------------------------
def test_ddl_between_executions_invalidates_cached_plan():
    engine, reg = make_engine()
    sql = "SELECT id, v FROM t WHERE id = 3"
    assert engine.execute(sql).rows == [(3, 9)]
    # drop and re-create the table with different content: the cached
    # plan's table handle is stale and must not be reused
    engine.execute("DROP TABLE t")
    engine.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)")
    engine.execute("INSERT INTO t VALUES (3, 777)")
    assert engine.execute(sql).rows == [(3, 777)]
    assert counter(reg, "sql.plan_cache_invalidations") >= 1


def test_ddl_between_prepare_and_execute_revalidates():
    engine, reg = make_engine()
    stmt = engine.prepare("SELECT v FROM t WHERE id = ?")
    engine.execute("DROP TABLE t")
    engine.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)")
    engine.execute("INSERT INTO t VALUES (7, -1)")
    # the prepared handle survives the DDL: it re-resolves the entry
    assert stmt.execute((7,)).rows == [(-1,)]
    assert counter(reg, "sql.plan_cache_invalidations") >= 1


def test_recreated_schema_shape_change_replans():
    engine, _reg = make_engine()
    sql = "SELECT * FROM t WHERE id = 1"
    assert engine.execute(sql).rows == [(1, 3)]
    engine.execute("DROP TABLE t")
    engine.execute(
        "CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER, w TEXT)"
    )
    engine.execute("INSERT INTO t VALUES (1, 3, 'x')")
    # SELECT * picks up the new third column — proof the plan re-bound
    assert engine.execute(sql).rows == [(1, 3, "x")]


def test_programmatic_ddl_bumps_schema_version():
    from repro.catalog.catalog import TableInfo
    from repro.catalog.schema import Column, Schema
    from repro.catalog.types import IntegerType
    from repro.storage.table_store import VerifiableTable

    engine, _reg = make_engine()
    before = engine.catalog.schema_version
    schema = Schema(
        columns=[Column("id", IntegerType())], primary_key="id"
    )
    engine.catalog.register(
        TableInfo("p", schema, VerifiableTable("p", schema, engine.storage))
    )
    assert engine.catalog.schema_version == before + 1
    engine.catalog.drop("p")
    assert engine.catalog.schema_version == before + 2


# ----------------------------------------------------------------------
# bounds and the off switch
# ----------------------------------------------------------------------
def test_lru_capacity_evicts_oldest_shape():
    engine, reg = make_engine(plan_cache_size=2)
    shapes = [
        "SELECT id FROM t WHERE v > 1",
        "SELECT id FROM t WHERE v > 2",
        "SELECT id FROM t WHERE v > 3",
    ]
    for sql in shapes:
        engine.execute(sql)
    assert len(engine.plan_cache) == 2
    # the first shape was evicted: running it again is a miss
    misses = counter(reg, "sql.plan_cache_misses")
    engine.execute(shapes[0])
    assert counter(reg, "sql.plan_cache_misses") == misses + 1
    # the most-recently-used shape is still cached
    hits = counter(reg, "sql.plan_cache_hits")
    engine.execute(shapes[2])
    assert counter(reg, "sql.plan_cache_hits") == hits + 1


def test_plan_cache_size_zero_disables_caching():
    engine, reg = make_engine(plan_cache_size=0)
    sql = "SELECT id FROM t WHERE v > 6"
    parsed_before = counter(reg, "sql.statements_parsed")
    for _ in range(4):
        engine.execute(sql)
    assert counter(reg, "sql.plan_cache_hits") == 0
    assert len(engine.plan_cache) == 0
    # every execution parses afresh
    assert counter(reg, "sql.statements_parsed") == parsed_before + 4


# ----------------------------------------------------------------------
# statements that must never be served from a template
# ----------------------------------------------------------------------
def test_subquery_statements_stay_fresh():
    engine, reg = make_engine()
    sql = "SELECT id FROM t WHERE v = (SELECT MAX(v) FROM t)"
    assert engine.execute(sql).rows == [(19,)]
    engine.execute("INSERT INTO t VALUES (100, 999)")
    # plan-time subquery folding froze the old maximum; a cached plan
    # would return the stale row
    assert engine.execute(sql).rows == [(100,)]
    assert counter(reg, "sql.plan_cache_hits") == 0


def test_statement_has_subqueries_detector():
    assert statement_has_subqueries(
        parse_statement("SELECT 1 FROM t WHERE v IN (SELECT v FROM t)")
    )
    assert statement_has_subqueries(
        parse_statement("SELECT (SELECT MAX(v) FROM t) FROM t")
    )
    assert not statement_has_subqueries(
        parse_statement("SELECT id FROM t WHERE v > 1 AND id < 5")
    )


def test_control_statements_count_neither_hit_nor_miss():
    engine, reg = make_engine()
    hits = counter(reg, "sql.plan_cache_hits")
    misses = counter(reg, "sql.plan_cache_misses")
    engine.execute("CREATE TABLE c (id INTEGER PRIMARY KEY)")
    engine.execute("DROP TABLE c")
    assert counter(reg, "sql.plan_cache_hits") == hits
    assert counter(reg, "sql.plan_cache_misses") == misses


# ----------------------------------------------------------------------
# parameter arity
# ----------------------------------------------------------------------
def test_param_count_mismatch_is_an_execution_error():
    engine, _reg = make_engine()
    stmt = engine.prepare("SELECT v FROM t WHERE id = ? OR v = ?")
    assert stmt.param_count == 2
    with pytest.raises(ExecutionError):
        stmt.execute((1,))
    with pytest.raises(ExecutionError):
        stmt.execute((1, 2, 3))
    with pytest.raises(ExecutionError):
        engine.execute("SELECT v FROM t WHERE id = ?", params=())


# ----------------------------------------------------------------------
# sessions racing prepare/execute against concurrent DDL
# ----------------------------------------------------------------------
def test_two_sessions_share_cache_under_concurrent_ddl():
    """Sessions on two threads never see a stale plan while DDL churns.

    Both workers hammer prepared statements over table ``t`` while the
    main thread repeatedly drops and re-creates an unrelated table —
    every DDL bumps the global schema version, forcing revalidation of
    the workers' cached templates mid-flight. Correctness of every
    result is the assertion; the counters prove invalidation happened.
    """
    engine, reg = make_engine()
    expected = {i: i * 3 for i in range(20)}
    errors = []
    start = threading.Barrier(3)

    def worker(name):
        session = Session(engine, name=name)
        stmt = session.prepare("SELECT v FROM t WHERE id = ?")
        start.wait()
        try:
            for round_ in range(30):
                i = round_ % 20
                rows = stmt.execute((i,)).rows
                if rows != [(expected[i],)]:
                    errors.append((name, i, rows))
                direct = session.execute(
                    "SELECT v FROM t WHERE id = ?", params=(i,)
                ).rows
                if direct != [(expected[i],)]:
                    errors.append((name, i, direct))
        except Exception as exc:  # pragma: no cover - failure path
            errors.append((name, exc))

    threads = [
        threading.Thread(target=worker, args=(f"s{i}",)) for i in range(2)
    ]
    for t in threads:
        t.start()
    start.wait()
    for _ in range(10):
        engine.execute("CREATE TABLE churn (id INTEGER PRIMARY KEY)")
        engine.execute("DROP TABLE churn")
    for t in threads:
        t.join()
    assert errors == []
    assert counter(reg, "sql.plan_cache_invalidations") >= 1


def test_session_transaction_with_prepared_statement():
    engine, _reg = make_engine()
    session = Session(engine, name="tx")
    update = session.prepare("UPDATE t SET v = ? WHERE id = ?")
    session.execute("BEGIN")
    update.execute((1000, 5))
    assert session.execute(
        "SELECT v FROM t WHERE id = ?", params=(5,)
    ).rows == [(1000,)]
    session.execute("ROLLBACK")
    assert engine.execute("SELECT v FROM t WHERE id = 5").rows == [(15,)]


# ----------------------------------------------------------------------
# unit coverage of the cache structure itself
# ----------------------------------------------------------------------
def test_normalize_sql_collapses_whitespace_outside_strings():
    assert normalize_sql("SELECT  1\n FROM   t") == "SELECT 1 FROM t"
    # statements containing string literals are only stripped: a
    # collapse could corrupt the literal's spacing
    assert normalize_sql("  SELECT 'a  b' FROM t ") == "SELECT 'a  b' FROM t"


def test_plan_cache_rejects_uncacheable_entries():
    cache = PlanCache(4)
    stmt = parse_statement("SELECT 1 FROM t")
    entry = CacheEntry(
        sql="SELECT 1 FROM t",
        stmt=stmt,
        param_count=0,
        join_hint=None,
        schema_version=0,
        cacheable=False,
    )
    cache.put(("SELECT 1 FROM t", None), entry)
    assert len(cache) == 0
