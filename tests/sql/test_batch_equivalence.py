"""Batched execution is a pure performance change, not a semantic one.

The vectorized engine (RowBatch pulls through the operator tree) must
produce bit-identical results at every batch size — batch size 1
degenerates to the original row-at-a-time execution, so it is the
reference. Two properties are checked over the seeded fuzzer corpus:

1. differential correctness vs SQLite holds at each batch size, and
2. the per-query result streams (and a digest over them) are identical
   across batch sizes {1, 7, 1024}, with a clean verification pass at
   the end of each run.
"""

import hashlib
import random

import pytest

from repro.storage.config import StorageConfig
from tests.sql.test_sqlite_differential import (
    QueryFuzzer,
    _canon,
    _fuzz_corpus,
    _fuzz_setup,
)

BATCH_SIZES = [1, 7, 1024]


@pytest.mark.parametrize("batch_size", BATCH_SIZES)
def test_fuzzer_corpus_matches_sqlite_at_batch_size(batch_size):
    _fuzz_corpus(
        seed=17,
        queries=40,
        storage_config=StorageConfig(batch_size=batch_size),
    )


def _run_corpus(batch_size, seed, queries=40, reseed_data_every=20):
    """Replay the seeded corpus at one batch size; return per-query rows.

    The same seed drives data and query generation, so every batch size
    sees the same tables and the same statements.
    """
    rng = random.Random(seed)
    fuzzer = QueryFuzzer(rng)
    storage = engine = None
    results = []
    for index in range(queries):
        if index % reseed_data_every == 0:
            storage, engine, _connection = _fuzz_setup(
                rng, StorageConfig(batch_size=batch_size)
            )
        sql, exact_order = fuzzer.next_query()
        rows = engine.execute(sql).rows
        results.append(list(rows) if exact_order else _canon(rows))
    storage.verify_now()  # the batched read path left a clean RS/WS state
    return results


def _digest(results):
    payload = repr(results).encode()
    return hashlib.sha256(payload).hexdigest()


@pytest.mark.parametrize("seed", [17, 53])
def test_batch_sizes_agree_exactly(seed):
    reference = _run_corpus(1, seed)  # batch 1 == seed row-at-a-time
    reference_digest = _digest(reference)
    for batch_size in BATCH_SIZES[1:]:
        results = _run_corpus(batch_size, seed)
        for index, (expected, got) in enumerate(zip(reference, results)):
            assert expected == got, (
                f"batch_size={batch_size} seed={seed} query #{index} "
                "diverged from row-at-a-time execution"
            )
        assert _digest(results) == reference_digest
