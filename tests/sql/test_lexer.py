"""Unit tests for the SQL tokenizer."""

import pytest

from repro.errors import ParseError
from repro.sql.lexer import tokenize


def kinds(sql):
    return [(t.kind, t.value) for t in tokenize(sql)[:-1]]


def test_keywords_case_insensitive():
    assert kinds("select From")[0] == ("KEYWORD", "SELECT")
    assert kinds("select From")[1] == ("KEYWORD", "FROM")


def test_identifiers_preserve_case():
    assert kinds("lineItem")[0] == ("IDENT", "lineItem")


def test_numbers():
    assert kinds("42 3.14 .5") == [
        ("NUMBER", "42"),
        ("NUMBER", "3.14"),
        ("NUMBER", ".5"),
    ]


def test_qualified_name_not_a_float():
    assert kinds("t1.col") == [
        ("IDENT", "t1"),
        ("PUNCT", "."),
        ("IDENT", "col"),
    ]


def test_strings_with_escapes():
    assert kinds("'it''s'") == [("STRING", "it's")]


def test_unterminated_string():
    with pytest.raises(ParseError):
        tokenize("'oops")


def test_two_char_operators():
    assert kinds("<= >= <> !=") == [
        ("PUNCT", "<="),
        ("PUNCT", ">="),
        ("PUNCT", "<>"),
        ("PUNCT", "!="),
    ]


def test_comments_stripped():
    assert kinds("select -- a comment\n 1") == [
        ("KEYWORD", "SELECT"),
        ("NUMBER", "1"),
    ]


def test_bad_character():
    with pytest.raises(ParseError):
        tokenize("select @")


def test_eof_token():
    assert tokenize("x")[-1].kind == "EOF"
