"""Unit tests for the planner: access paths, joins, aggregation rewrites."""

import pytest

from repro.catalog.catalog import Catalog, TableInfo
from repro.catalog.schema import Column, Schema
from repro.catalog.types import IntegerType, TextType
from repro.errors import PlanningError
from repro.sql.operators import (
    FilterOp,
    FusedScanFilterProjectOp,
    HashAggregateOp,
    HashJoinOp,
    IndexNestedLoopJoinOp,
    MergeJoinOp,
    NestedLoopJoinOp,
    PointLookupOp,
    RangeScanOp,
    SeqScanOp,
)
from repro.sql.parser import parse_statement
from repro.sql.planner import Planner
from repro.storage.engine import StorageEngine
from repro.storage.table_store import VerifiableTable


@pytest.fixture
def planner():
    catalog = Catalog()
    engine = StorageEngine()
    for name, columns, pk, chains in (
        (
            "orders",
            [
                Column("o_id", IntegerType()),
                Column("o_cust", IntegerType(), nullable=False),
                Column("o_total", IntegerType()),
            ],
            "o_id",
            ("o_cust",),
        ),
        (
            "customers",
            [
                Column("c_id", IntegerType()),
                Column("c_name", TextType()),
            ],
            "c_id",
            (),
        ),
    ):
        schema = Schema(columns=columns, primary_key=pk, chain_columns=chains)
        catalog.register(
            TableInfo(name, schema, VerifiableTable(name, schema, engine))
        )
    return Planner(catalog)


def plan(planner, sql, hint=None):
    return planner.plan_select(parse_statement(sql), hint)


def ops_of(root, cls):
    return [op for op in root.walk() if isinstance(op, cls)]


def test_pk_equality_uses_point_lookup(planner):
    root = plan(planner, "SELECT * FROM orders WHERE o_id = 5")
    assert ops_of(root, PointLookupOp)
    assert not ops_of(root, SeqScanOp)


def test_chained_range_uses_range_scan(planner):
    root = plan(planner, "SELECT * FROM orders WHERE o_cust BETWEEN 1 AND 9")
    (scan,) = ops_of(root, RangeScanOp)
    assert scan.column == "o_cust"
    assert (scan.lo, scan.hi) == (1, 9)


def test_combined_bounds_tightest_wins(planner):
    root = plan(
        planner,
        "SELECT * FROM orders WHERE o_id >= 3 AND o_id > 4 AND o_id <= 20 "
        "AND o_id < 15",
    )
    (scan,) = ops_of(root, RangeScanOp)
    assert scan.lo == 4 and not scan.include_lo
    assert scan.hi == 15 and not scan.include_hi


def test_reversed_literal_comparison_is_sargable(planner):
    root = plan(planner, "SELECT * FROM orders WHERE 5 <= o_id")
    (scan,) = ops_of(root, RangeScanOp)
    assert scan.lo == 5 and scan.include_lo


def test_unchained_predicate_residual_filter(planner):
    root = plan(planner, "SELECT * FROM orders WHERE o_total > 100")
    assert ops_of(root, SeqScanOp)
    # the residual predicate lands in the fused scan→filter pipeline
    (fused,) = ops_of(root, FusedScanFilterProjectOp)
    assert fused.predicates


def test_pk_equality_beats_secondary_equality(planner):
    root = plan(
        planner, "SELECT * FROM orders WHERE o_cust = 7 AND o_id = 3"
    )
    assert ops_of(root, PointLookupOp)


def test_secondary_equality_is_point_range(planner):
    root = plan(planner, "SELECT * FROM orders WHERE o_cust = 7")
    (scan,) = ops_of(root, RangeScanOp)
    assert scan.lo == scan.hi == 7


def test_join_default_index_nl_on_pk(planner):
    root = plan(
        planner,
        "SELECT o.o_id FROM orders o, customers c WHERE o.o_cust = c.c_id",
    )
    assert ops_of(root, IndexNestedLoopJoinOp)


def test_join_hints(planner):
    sql = "SELECT o.o_id FROM orders o, customers c WHERE o.o_cust = c.c_id"
    assert ops_of(plan(planner, sql, "merge"), MergeJoinOp)
    assert ops_of(plan(planner, sql, "hash"), HashJoinOp)
    assert ops_of(plan(planner, sql, "nested_loop"), NestedLoopJoinOp)
    assert ops_of(plan(planner, sql, "index_nl"), IndexNestedLoopJoinOp)


def test_bad_hint_rejected(planner):
    with pytest.raises(PlanningError):
        plan(planner, "SELECT * FROM orders", "zigzag")


def test_index_nl_requires_pk_equality(planner):
    with pytest.raises(PlanningError):
        plan(
            planner,
            "SELECT o.o_id FROM orders o, customers c WHERE o.o_cust > c.c_id",
            "index_nl",
        )


def test_non_equi_join_is_nested_loop(planner):
    root = plan(
        planner,
        "SELECT o.o_id FROM orders o, customers c WHERE o.o_cust > c.c_id",
    )
    assert ops_of(root, NestedLoopJoinOp)


def test_single_table_predicates_pushed_below_join(planner):
    root = plan(
        planner,
        "SELECT o.o_id FROM orders o, customers c "
        "WHERE o.o_cust = c.c_id AND o.o_id BETWEEN 1 AND 5",
        "hash",
    )
    (join,) = ops_of(root, HashJoinOp)
    # the orders side under the join is a range scan, not a post-filter
    assert ops_of(join.children[0], RangeScanOp)


def test_duplicate_binding_rejected(planner):
    with pytest.raises(PlanningError):
        plan(planner, "SELECT * FROM orders o, customers o")


def test_aggregation_rewrite(planner):
    root = plan(
        planner,
        "SELECT o_cust, SUM(o_total) FROM orders GROUP BY o_cust "
        "HAVING SUM(o_total) > 10 ORDER BY SUM(o_total) DESC",
    )
    (agg,) = ops_of(root, HashAggregateOp)
    assert len(agg.aggregates) == 1  # deduplicated across SELECT/HAVING/ORDER
    assert ops_of(root, FilterOp)  # HAVING became a filter above the agg


def test_group_by_constant_condition_stays_top(planner):
    root = plan(planner, "SELECT o_id FROM orders WHERE 1 = 1")
    # the constant predicate fuses with the projection over the scan
    (fused,) = ops_of(root, FusedScanFilterProjectOp)
    assert fused.predicates and fused.exprs is not None


def test_explain_mentions_access_path(planner):
    root = plan(planner, "SELECT * FROM orders WHERE o_id = 1")
    assert "IndexSearch" in root.explain()
