"""Unit tests for the SQL parser."""

import datetime

import pytest

from repro.errors import ParseError
from repro.sql.ast_nodes import (
    Aggregate,
    Between,
    BinaryOp,
    ColumnRef,
    CreateTable,
    Delete,
    Insert,
    Like,
    Literal,
    Select,
    Update,
)
from repro.sql.parser import parse_statement


def test_simple_select():
    stmt = parse_statement("SELECT a, b FROM t")
    assert isinstance(stmt, Select)
    assert [i.expr for i in stmt.items] == [ColumnRef("a"), ColumnRef("b")]
    assert stmt.tables[0].name == "t"


def test_select_star():
    stmt = parse_statement("SELECT * FROM t WHERE x = 1")
    assert stmt.star
    assert stmt.where == BinaryOp("=", ColumnRef("x"), Literal(1))


def test_select_with_alias():
    stmt = parse_statement("SELECT q.id AS quote_id FROM quote q")
    assert stmt.items[0].alias == "quote_id"
    assert stmt.items[0].expr == ColumnRef("id", "q")
    assert stmt.tables[0].alias == "q"


def test_implicit_join_and_where():
    stmt = parse_statement(
        "SELECT q.id, q.count, i.count FROM quote AS q, inventory AS i "
        "WHERE q.id = i.id AND q.count > i.count"
    )
    assert len(stmt.tables) == 2
    assert isinstance(stmt.where, BinaryOp)
    assert stmt.where.op == "AND"


def test_explicit_join():
    stmt = parse_statement("SELECT a FROM t JOIN u ON t.id = u.id")
    assert len(stmt.joins) == 1
    assert stmt.joins[0].table.name == "u"
    assert stmt.joins[0].condition == BinaryOp(
        "=", ColumnRef("id", "t"), ColumnRef("id", "u")
    )


def test_group_by_having_order_limit():
    stmt = parse_statement(
        "SELECT a, SUM(b) AS total FROM t GROUP BY a HAVING SUM(b) > 10 "
        "ORDER BY total DESC, a LIMIT 5"
    )
    assert stmt.group_by == [ColumnRef("a")]
    assert isinstance(stmt.having, BinaryOp)
    assert stmt.order_by[0].ascending is False
    assert stmt.order_by[1].ascending is True
    assert stmt.limit == 5


def test_aggregates():
    stmt = parse_statement("SELECT COUNT(*), AVG(x), MIN(y) FROM t")
    assert stmt.items[0].expr == Aggregate("COUNT", None)
    assert stmt.items[1].expr == Aggregate("AVG", ColumnRef("x"))


def test_count_distinct():
    stmt = parse_statement("SELECT COUNT(DISTINCT x) FROM t")
    assert stmt.items[0].expr == Aggregate("COUNT", ColumnRef("x"), distinct=True)


def test_sum_star_invalid():
    with pytest.raises(ParseError):
        parse_statement("SELECT SUM(*) FROM t")


def test_between_and_like():
    stmt = parse_statement(
        "SELECT * FROM t WHERE a BETWEEN 1 AND 5 AND name LIKE 'ab%'"
    )
    left, right = stmt.where.left, stmt.where.right
    assert left == Between(ColumnRef("a"), Literal(1), Literal(5))
    assert right == Like(ColumnRef("name"), "ab%")


def test_not_between():
    stmt = parse_statement("SELECT * FROM t WHERE a NOT BETWEEN 1 AND 5")
    assert stmt.where.negated


def test_in_list():
    stmt = parse_statement("SELECT * FROM t WHERE a IN (1, 2, 3)")
    assert stmt.where.items == (Literal(1), Literal(2), Literal(3))


def test_is_null():
    stmt = parse_statement("SELECT * FROM t WHERE a IS NOT NULL")
    assert stmt.where.negated


def test_date_literal():
    stmt = parse_statement("SELECT * FROM t WHERE d >= DATE '1994-01-01'")
    assert stmt.where.right == Literal(datetime.date(1994, 1, 1))


def test_arithmetic_precedence():
    stmt = parse_statement("SELECT a + b * c FROM t")
    expr = stmt.items[0].expr
    assert expr.op == "+"
    assert expr.right.op == "*"


def test_parenthesized():
    stmt = parse_statement("SELECT (a + b) * c FROM t")
    assert stmt.items[0].expr.op == "*"


def test_unary_minus():
    stmt = parse_statement("SELECT -a FROM t")
    assert stmt.items[0].expr.op == "NEG"


def test_insert_positional():
    stmt = parse_statement("INSERT INTO t VALUES (1, 'x'), (2, 'y')")
    assert isinstance(stmt, Insert)
    assert len(stmt.rows) == 2
    assert stmt.columns == []


def test_insert_with_columns():
    stmt = parse_statement("INSERT INTO t (id, name) VALUES (1, 'x')")
    assert stmt.columns == ["id", "name"]


def test_update():
    stmt = parse_statement("UPDATE t SET a = a + 1, b = 'x' WHERE id = 3")
    assert isinstance(stmt, Update)
    assert stmt.assignments[0][0] == "a"
    assert stmt.where == BinaryOp("=", ColumnRef("id"), Literal(3))


def test_delete():
    stmt = parse_statement("DELETE FROM t WHERE id = 3")
    assert isinstance(stmt, Delete)


def test_create_table_inline_pk():
    stmt = parse_statement(
        "CREATE TABLE quote (id INTEGER PRIMARY KEY, count INTEGER NOT NULL, "
        "price DECIMAL(12, 2), CHAIN (count))"
    )
    assert isinstance(stmt, CreateTable)
    assert stmt.primary_key == "id"
    assert stmt.chain_columns == ["count"]
    assert stmt.columns[1].not_null


def test_create_table_separate_pk():
    stmt = parse_statement("CREATE TABLE t (a INT, b TEXT, PRIMARY KEY (a))")
    assert stmt.primary_key == "a"


def test_create_table_duplicate_pk_rejected():
    with pytest.raises(ParseError):
        parse_statement("CREATE TABLE t (a INT PRIMARY KEY, b INT PRIMARY KEY)")


def test_trailing_semicolon_ok():
    parse_statement("SELECT a FROM t;")


def test_trailing_garbage_rejected():
    with pytest.raises(ParseError):
        parse_statement("SELECT a FROM t garbage extra ,")


def test_empty_statement_rejected():
    with pytest.raises(ParseError):
        parse_statement("")
