"""EXPLAIN, INSERT…SELECT and executor edge cases."""

import pytest

from repro.catalog.catalog import Catalog
from repro.errors import ExecutionError, PlanningError
from repro.sql.executor import QueryEngine
from repro.storage.engine import StorageEngine


@pytest.fixture
def engine():
    qe = QueryEngine(Catalog(), StorageEngine())
    qe.execute("CREATE TABLE src (id INTEGER PRIMARY KEY, v INTEGER)")
    qe.execute("INSERT INTO src VALUES (1, 10), (2, 20), (3, 30)")
    return qe


# ----------------------------------------------------------------------
# EXPLAIN
# ----------------------------------------------------------------------
def test_explain_statement(engine):
    result = engine.execute("EXPLAIN SELECT * FROM src WHERE id = 2")
    assert result.columns == ["plan"]
    text = "\n".join(r[0] for r in result.rows)
    assert "IndexSearch" in text


def test_explain_does_not_execute(engine):
    stats_before = engine.catalog.lookup("src").store.stats.point_lookups
    engine.execute("EXPLAIN SELECT * FROM src WHERE id = 2")
    stats_after = engine.catalog.lookup("src").store.stats.point_lookups
    assert stats_after == stats_before


def test_explain_respects_hints(engine):
    engine.execute("CREATE TABLE other (id INTEGER PRIMARY KEY)")
    result = engine.execute(
        "EXPLAIN SELECT src.id FROM src, other WHERE src.id = other.id",
        join_hint="merge",
    )
    assert any("MergeJoin" in r[0] for r in result.rows)


# ----------------------------------------------------------------------
# INSERT INTO ... SELECT
# ----------------------------------------------------------------------
def test_insert_select(engine):
    engine.execute("CREATE TABLE dst (id INTEGER PRIMARY KEY, v INTEGER)")
    result = engine.execute(
        "INSERT INTO dst SELECT id, v * 2 FROM src WHERE v >= 20"
    )
    assert result.rowcount == 2
    assert engine.execute("SELECT * FROM dst").rows == [(2, 40), (3, 60)]


def test_insert_select_with_columns(engine):
    engine.execute("CREATE TABLE dst (id INTEGER PRIMARY KEY, v INTEGER)")
    engine.execute("INSERT INTO dst (id) SELECT id + 100 FROM src")
    assert engine.execute("SELECT COUNT(*) FROM dst WHERE v IS NULL").rows == [
        (3,)
    ]


def test_insert_select_arity_mismatch(engine):
    engine.execute("CREATE TABLE dst (id INTEGER PRIMARY KEY, v INTEGER)")
    with pytest.raises(ExecutionError):
        engine.execute("INSERT INTO dst (id, v) SELECT id FROM src")


def test_insert_select_self_snapshot(engine):
    """Inserting a table into itself operates on a pre-read snapshot."""
    result = engine.execute(
        "INSERT INTO src SELECT id + 10, v FROM src"
    )
    assert result.rowcount == 3
    assert engine.execute("SELECT COUNT(*) FROM src").rows == [(6,)]


# ----------------------------------------------------------------------
# misc executor edges
# ----------------------------------------------------------------------
def test_plan_api_select_only(engine):
    plan = engine.plan("SELECT * FROM src")
    assert "SeqScan" in plan.explain()
    with pytest.raises(PlanningError):
        engine.plan("DELETE FROM src")


def test_insert_values_arity_checked(engine):
    with pytest.raises(Exception):
        engine.execute("INSERT INTO src VALUES (9)")


def test_insert_expression_values(engine):
    engine.execute("INSERT INTO src VALUES (4, 2 * 20 + 2)")
    assert engine.execute("SELECT v FROM src WHERE id = 4").rows == [(42,)]


def test_update_expression_uses_row(engine):
    engine.execute("UPDATE src SET v = v + id WHERE id >= 2")
    assert engine.execute("SELECT v FROM src ORDER BY id").rows == [
        (10,),
        (22,),
        (33,),
    ]


def test_delete_rowcount(engine):
    assert engine.execute("DELETE FROM src WHERE v > 15").rowcount == 2


def test_division_by_zero_surfaces(engine):
    with pytest.raises(ZeroDivisionError):
        engine.execute("SELECT v / 0 FROM src")


def test_result_metadata_for_dml(engine):
    result = engine.execute("INSERT INTO src VALUES (99, 0)")
    assert result.columns == []
    assert result.plan is None
    assert result.total_seconds() == 0.0
    assert result.explain() == ""
