"""End-to-end SQL engine tests over verifiable storage."""

import pytest

from repro.catalog.catalog import Catalog
from repro.errors import CatalogError, PlanningError
from repro.sql.executor import QueryEngine
from repro.storage.config import StorageConfig
from repro.storage.engine import StorageEngine


@pytest.fixture
def engine():
    storage = StorageEngine(StorageConfig())
    qe = QueryEngine(Catalog(), storage)
    qe.execute(
        "CREATE TABLE quote (id INTEGER PRIMARY KEY, count INTEGER NOT NULL, "
        "price INTEGER, CHAIN (count))"
    )
    qe.execute(
        "CREATE TABLE inventory (id INTEGER PRIMARY KEY, count INTEGER, "
        "descr TEXT)"
    )
    # the paper's running example (Figure 8)
    qe.execute(
        "INSERT INTO quote VALUES (1, 100, 100), (2, 100, 200), "
        "(3, 500, 100), (4, 600, 100)"
    )
    qe.execute(
        "INSERT INTO inventory VALUES (1, 50, 'desc1'), (3, 200, 'desc3'), "
        "(4, 100, 'desc4'), (6, 100, 'desc6')"
    )
    return qe


def test_select_star(engine):
    result = engine.execute("SELECT * FROM quote")
    assert result.rowcount == 4
    assert result.rows[0] == (1, 100, 100)


def test_projection_and_alias(engine):
    result = engine.execute("SELECT id AS quote_id, price FROM quote")
    assert result.columns == ["quote_id", "price"]
    assert result.rows[0] == (1, 100)


def test_point_lookup_plan_and_result(engine):
    result = engine.execute("SELECT * FROM quote WHERE id = 3")
    assert result.rows == [(3, 500, 100)]
    assert "IndexSearch" in result.explain()


def test_point_lookup_miss(engine):
    result = engine.execute("SELECT * FROM quote WHERE id = 99")
    assert result.rows == []


def test_range_scan_plan(engine):
    result = engine.execute("SELECT id FROM quote WHERE id BETWEEN 2 AND 3")
    assert [r[0] for r in result.rows] == [2, 3]
    assert "RangeScan" in result.explain()


def test_range_on_secondary_chain(engine):
    result = engine.execute("SELECT id FROM quote WHERE count >= 500")
    assert sorted(r[0] for r in result.rows) == [3, 4]
    assert "RangeScan" in result.explain()
    assert "count" in result.explain()


def test_filter_on_unchained_column_uses_seqscan(engine):
    result = engine.execute("SELECT id FROM quote WHERE price = 100")
    assert sorted(r[0] for r in result.rows) == [1, 3, 4]
    assert "SeqScan" in result.explain()


def test_paper_example_query(engine):
    """Example 5.4: quotes exceeding the current inventory balance."""
    result = engine.execute(
        "SELECT q.id, q.count, i.count FROM quote AS q, inventory AS i "
        "WHERE q.id = i.id AND q.count > i.count"
    )
    assert sorted(result.rows) == [(1, 100, 50), (3, 500, 200), (4, 600, 100)]


def test_join_hints_agree(engine):
    sql = (
        "SELECT q.id FROM quote q, inventory i "
        "WHERE q.id = i.id AND q.count > i.count"
    )
    expected = sorted(engine.execute(sql).rows)
    for hint in ("merge", "nested_loop", "hash", "index_nl"):
        assert sorted(engine.execute(sql, join_hint=hint).rows) == expected


def test_index_nl_join_default_on_pk(engine):
    result = engine.execute(
        "SELECT q.id FROM quote q, inventory i WHERE q.id = i.id"
    )
    assert "IndexNLJoin" in result.explain()
    assert sorted(r[0] for r in result.rows) == [1, 3, 4]


def test_explicit_join_syntax(engine):
    result = engine.execute(
        "SELECT q.id FROM quote q JOIN inventory i ON q.id = i.id"
    )
    assert sorted(r[0] for r in result.rows) == [1, 3, 4]


def test_aggregates_global(engine):
    result = engine.execute(
        "SELECT COUNT(*), SUM(count), MIN(price), MAX(price), AVG(count) "
        "FROM quote"
    )
    assert result.rows == [(4, 1300, 100, 200, 325.0)]


def test_group_by_having(engine):
    result = engine.execute(
        "SELECT price, COUNT(*) AS n FROM quote GROUP BY price "
        "HAVING COUNT(*) > 1"
    )
    assert result.rows == [(100, 3)]
    assert result.columns == ["price", "n"]


def test_group_by_empty_input(engine):
    result = engine.execute("SELECT COUNT(*) FROM quote WHERE id > 100")
    assert result.rows == [(0,)]


def test_order_by_and_limit(engine):
    result = engine.execute("SELECT id FROM quote ORDER BY count DESC, id LIMIT 2")
    assert [r[0] for r in result.rows] == [4, 3]


def test_order_by_alias(engine):
    result = engine.execute(
        "SELECT id, count * 2 AS doubled FROM quote ORDER BY doubled DESC LIMIT 1"
    )
    assert result.rows == [(4, 1200)]


def test_count_distinct(engine):
    result = engine.execute("SELECT COUNT(DISTINCT price) FROM quote")
    assert result.rows == [(2,)]


def test_update_statement(engine):
    result = engine.execute("UPDATE quote SET price = price + 10 WHERE id = 1")
    assert result.rowcount == 1
    assert engine.execute("SELECT price FROM quote WHERE id = 1").rows == [(110,)]


def test_update_all_rows(engine):
    result = engine.execute("UPDATE quote SET price = 0")
    assert result.rowcount == 4


def test_delete_statement(engine):
    result = engine.execute("DELETE FROM quote WHERE count = 100")
    assert result.rowcount == 2
    assert engine.execute("SELECT COUNT(*) FROM quote").rows == [(2,)]


def test_delete_all(engine):
    assert engine.execute("DELETE FROM quote").rowcount == 4
    assert engine.execute("SELECT COUNT(*) FROM quote").rows == [(0,)]


def test_insert_with_column_list(engine):
    engine.execute("INSERT INTO quote (id, count) VALUES (9, 7)")
    assert engine.execute("SELECT * FROM quote WHERE id = 9").rows == [(9, 7, None)]


def test_in_and_like(engine):
    result = engine.execute("SELECT id FROM inventory WHERE descr LIKE 'desc%'")
    assert result.rowcount == 4
    result = engine.execute("SELECT id FROM quote WHERE id IN (1, 4, 7)")
    assert sorted(r[0] for r in result.rows) == [1, 4]


def test_is_null_filter(engine):
    engine.execute("INSERT INTO quote (id, count) VALUES (10, 5)")
    result = engine.execute("SELECT id FROM quote WHERE price IS NULL")
    assert result.rows == [(10,)]


def test_drop_table(engine):
    engine.execute("DROP TABLE inventory")
    with pytest.raises(CatalogError):
        engine.execute("SELECT * FROM inventory")


def test_create_requires_pk(engine):
    with pytest.raises(PlanningError):
        engine.execute("CREATE TABLE nopk (a INTEGER)")


def test_unknown_column_rejected(engine):
    with pytest.raises(PlanningError):
        engine.execute("SELECT ghost FROM quote")


def test_ambiguous_column_rejected(engine):
    with pytest.raises(PlanningError):
        engine.execute(
            "SELECT count FROM quote q, inventory i WHERE q.id = i.id"
        )


def test_select_star_grouped_rejected(engine):
    with pytest.raises(PlanningError):
        engine.execute("SELECT * FROM quote GROUP BY price")


def test_scan_other_timing_split(engine):
    result = engine.execute("SELECT COUNT(*) FROM quote")
    assert result.total_seconds() > 0
    assert result.scan_seconds() >= 0
    assert result.other_seconds() >= 0


def test_verification_passes_after_sql_workload(engine):
    engine.execute("UPDATE quote SET price = 1 WHERE id = 2")
    engine.execute("DELETE FROM quote WHERE id = 3")
    engine.storage.verify_now()


def test_expression_projection(engine):
    result = engine.execute("SELECT id * 10 + 1 FROM quote WHERE id = 2")
    assert result.rows == [(21,)]
    assert result.columns == ["col0"]
