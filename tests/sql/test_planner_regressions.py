"""Planner regressions (found by the SQLite differential fuzz)."""

import pytest

from repro.catalog.catalog import Catalog
from repro.sql.executor import QueryEngine
from repro.storage.engine import StorageEngine


@pytest.fixture
def engine():
    qe = QueryEngine(Catalog(), StorageEngine())
    qe.execute(
        "CREATE TABLE t (id INTEGER PRIMARY KEY, a INTEGER NOT NULL, "
        "CHAIN (a))"
    )
    for i in range(10):
        qe.execute(f"INSERT INTO t VALUES ({i}, {i % 4})")
    return qe


def test_contradictory_equalities_on_chain_column(engine):
    """``a = 1 AND a = 0`` used to collapse to the last equality."""
    assert engine.execute("SELECT COUNT(*) FROM t WHERE a = 1 AND a = 0").rows == [
        (0,)
    ]
    assert engine.execute(
        "SELECT COUNT(*) FROM t WHERE a = 1 AND a = 1"
    ).rows == [(3,)]


def test_contradictory_equalities_on_primary_key(engine):
    assert engine.execute(
        "SELECT COUNT(*) FROM t WHERE id = 3 AND id = 4"
    ).rows == [(0,)]


def test_equality_plus_bound_both_enforced(engine):
    """``a = 3 AND a < 3`` used to drop the bound silently."""
    assert engine.execute(
        "SELECT COUNT(*) FROM t WHERE a = 3 AND a < 3"
    ).rows == [(0,)]
    assert engine.execute(
        "SELECT COUNT(*) FROM t WHERE a = 3 AND a <= 3"
    ).rows == [(2,)]
    assert engine.execute(
        "SELECT COUNT(*) FROM t WHERE id = 5 AND id > 7"
    ).rows == [(0,)]


def test_contradictory_bounds_yield_empty(engine):
    assert engine.execute(
        "SELECT COUNT(*) FROM t WHERE a > 2 AND a < 1"
    ).rows == [(0,)]
    assert engine.execute(
        "SELECT COUNT(*) FROM t WHERE id >= 8 AND id <= 2"
    ).rows == [(0,)]


def test_duplicate_equalities_still_use_index(engine):
    result = engine.execute("SELECT id FROM t WHERE id = 5 AND id = 5")
    assert result.rows == [(5,)]
    assert "IndexSearch" in result.explain()
