"""Differential testing against SQLite.

Hypothesis generates random tables and random queries from a dialect
subset both engines accept, runs them on VeriDB (over fully verified
storage) and on SQLite, and compares results. Divergence means a bug in
our parser, planner, operators or NULL handling.

The generated subset deliberately avoids known semantic differences:
no division (SQLite's ``/`` on integers truncates), no string ordering
edge cases beyond plain ASCII, LIMIT only under a unique total ORDER
BY.
"""

import random
import sqlite3

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.catalog.catalog import Catalog
from repro.sql.executor import QueryEngine
from repro.storage.engine import StorageEngine

# ----------------------------------------------------------------------
# data generation
# ----------------------------------------------------------------------
_row = st.tuples(
    st.integers(0, 50),  # a
    st.one_of(st.none(), st.integers(-5, 5)),  # b (nullable)
    st.one_of(st.none(), st.text(alphabet="xyz", max_size=2)),  # s (nullable)
)
_rows = st.lists(_row, max_size=25)

# ----------------------------------------------------------------------
# predicate generation (shared dialect)
# ----------------------------------------------------------------------
_comparison = st.builds(
    lambda col, op, lit: f"({col} {op} {lit})",
    st.sampled_from(["a", "b", "id"]),
    st.sampled_from(["=", "!=", "<", "<=", ">", ">="]),
    st.integers(-5, 50),
)
_between = st.builds(
    lambda col, lo, hi: f"({col} BETWEEN {lo} AND {hi})",
    st.sampled_from(["a", "id"]),
    st.integers(0, 25),
    st.integers(10, 50),
)
_in_list = st.builds(
    lambda col, items: f"({col} IN ({', '.join(map(str, items))}))",
    st.sampled_from(["a", "b"]),
    st.lists(st.integers(-5, 50), min_size=1, max_size=4),
)
_is_null = st.builds(
    lambda col, negated: f"({col} IS {'NOT ' if negated else ''}NULL)",
    st.sampled_from(["b", "s"]),
    st.booleans(),
)
_atom = st.one_of(_comparison, _between, _in_list, _is_null)
_predicate = st.recursive(
    _atom,
    lambda inner: st.builds(
        lambda left, connective, right: f"({left} {connective} {right})",
        inner,
        st.sampled_from(["AND", "OR"]),
        inner,
    ),
    max_leaves=4,
)


def _run_both(rows, sql, params=None):
    storage = StorageEngine()
    engine = QueryEngine(Catalog(), storage)
    engine.execute(
        "CREATE TABLE t (id INTEGER PRIMARY KEY, a INTEGER NOT NULL, "
        "b INTEGER, s TEXT, CHAIN (a))"
    )
    connection = sqlite3.connect(":memory:")
    connection.execute(
        "CREATE TABLE t (id INTEGER PRIMARY KEY, a INTEGER NOT NULL, "
        "b INTEGER, s TEXT)"
    )
    for i, (a, b, s) in enumerate(rows):
        engine.catalog.lookup("t").store.insert((i, a, b, s))
        connection.execute("INSERT INTO t VALUES (?, ?, ?, ?)", (i, a, b, s))
    # run every query twice: the first execution populates the plan
    # cache, the second is served from it — both must agree with SQLite
    ours = engine.execute(sql, params=params).rows
    cached = engine.execute(sql, params=params).rows
    assert _canon(cached) == _canon(ours), "plan-cache hit changed rows"
    theirs = [
        tuple(r)
        for r in connection.execute(sql, params or ()).fetchall()
    ]
    storage.verify_now()
    return ours, theirs


def _canon(rows):
    def key(row):
        return tuple((value is None, value) for value in row)

    return sorted(rows, key=key)


def _approx_equal(ours, theirs):
    assert len(ours) == len(theirs)
    for mine, other in zip(_canon(ours), _canon(theirs)):
        assert len(mine) == len(other)
        for a, b in zip(mine, other):
            if isinstance(a, float) or isinstance(b, float):
                assert a == pytest.approx(b)
            else:
                assert a == b


# ----------------------------------------------------------------------
# properties
# ----------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(rows=_rows, predicate=_predicate)
def test_filtered_select_matches_sqlite(rows, predicate):
    sql = f"SELECT id, a, b, s FROM t WHERE {predicate}"
    ours, theirs = _run_both(rows, sql)
    _approx_equal(ours, theirs)


@settings(max_examples=40, deadline=None)
@given(rows=_rows, predicate=_predicate)
def test_aggregates_match_sqlite(rows, predicate):
    sql = (
        "SELECT COUNT(*), COUNT(b), SUM(a), MIN(b), MAX(a), AVG(a) "
        f"FROM t WHERE {predicate}"
    )
    ours, theirs = _run_both(rows, sql)
    # empty-input aggregates: SQLite yields one row of NULLs for
    # SUM/MIN/MAX/AVG and 0 for COUNT — ours does the same
    _approx_equal(ours, theirs)


@settings(max_examples=40, deadline=None)
@given(rows=_rows)
def test_group_by_matches_sqlite(rows):
    sql = "SELECT a, COUNT(*), SUM(a), MIN(b) FROM t GROUP BY a"
    ours, theirs = _run_both(rows, sql)
    _approx_equal(ours, theirs)


@settings(max_examples=40, deadline=None)
@given(rows=_rows, limit=st.integers(0, 10), descending=st.booleans())
def test_order_limit_matches_sqlite(rows, limit, descending):
    direction = "DESC" if descending else "ASC"
    sql = f"SELECT id, a FROM t ORDER BY id {direction} LIMIT {limit}"
    ours, theirs = _run_both(rows, sql)
    assert list(ours) == theirs  # exact order: id is unique


@settings(max_examples=30, deadline=None)
@given(rows=_rows, predicate=_predicate)
def test_distinct_matches_sqlite(rows, predicate):
    sql = f"SELECT DISTINCT a, b FROM t WHERE {predicate}"
    ours, theirs = _run_both(rows, sql)
    _approx_equal(ours, theirs)


@settings(max_examples=30, deadline=None)
@given(rows=_rows)
def test_scalar_subquery_matches_sqlite(rows):
    sql = "SELECT id FROM t WHERE a >= (SELECT AVG(a) FROM t)"
    ours, theirs = _run_both(rows, sql)
    if not rows:
        # AVG over empty input is NULL; the comparison is never true
        assert ours == [] and theirs == []
        return
    _approx_equal(ours, theirs)


@settings(max_examples=40, deadline=None)
@given(
    rows=_rows,
    col=st.sampled_from(["a", "b", "id"]),
    op=st.sampled_from(["=", "!=", "<", "<=", ">", ">="]),
    value=st.one_of(st.none(), st.integers(-5, 50)),
    other=st.integers(-5, 5),
)
def test_parameterized_select_matches_sqlite(rows, col, op, value, other):
    """Bound ``?`` parameters behave exactly like inlined literals.

    Both engines take the same placeholder syntax; the same shape is
    executed twice per example (second run is a plan-cache hit with the
    same binding), and NULL bindings exercise the scans'
    parameter-resolution short-circuit.
    """
    sql = f"SELECT id, a, b FROM t WHERE ({col} {op} ?) OR (b = ?)"
    ours, theirs = _run_both(rows, sql, params=(value, other))
    _approx_equal(ours, theirs)


# ----------------------------------------------------------------------
# seeded random-query fuzzer: joins, aggregates, NULLs, ORDER/LIMIT
#
# One seeded ``random.Random`` drives both data and query generation, so
# a failure reproduces from nothing but the printed (seed, index) pair.
# The CI corpus is bounded; the slow-marked variant runs a much larger
# sweep for opt-in deep runs (``pytest -m slow``).
# ----------------------------------------------------------------------
class QueryFuzzer:
    """Composes random two-table queries in the shared dialect subset."""

    def __init__(self, rng: random.Random):
        self.rng = rng

    def literal(self):
        return self.rng.randrange(-5, 51)

    def predicate(self, cols, depth=2):
        roll = self.rng.random()
        if depth > 0 and roll < 0.3:
            connective = self.rng.choice(["AND", "OR"])
            left = self.predicate(cols, depth - 1)
            right = self.predicate(cols, depth - 1)
            return f"({left} {connective} {right})"
        col = self.rng.choice(cols)
        if roll < 0.45:
            return f"({col} IS {'NOT ' if self.rng.random() < 0.5 else ''}NULL)"
        if roll < 0.6:
            items = ", ".join(
                str(self.literal()) for _ in range(self.rng.randrange(1, 5))
            )
            return f"({col} IN ({items}))"
        op = self.rng.choice(["=", "!=", "<", "<=", ">", ">="])
        return f"({col} {op} {self.literal()})"

    def single_table(self):
        where = self.predicate(["a", "b", "id"])
        return f"SELECT id, a, b FROM t WHERE {where}", False

    def inner_join(self):
        key = self.rng.choice(["a", "id"])
        where = self.predicate(["t.a", "t.b", "u.c", "u.id"])
        sql = (
            "SELECT t.id, u.id, t.a, u.c FROM t "
            f"JOIN u ON t.{key} = u.{'a' if key == 'a' else 'id'} "
            f"WHERE {where}"
        )
        return sql, False

    def left_join(self):
        where = self.predicate(["t.a", "t.b"])
        sql = (
            "SELECT t.id, u.c FROM t LEFT JOIN u ON t.a = u.a "
            f"WHERE {where}"
        )
        return sql, False

    def join_aggregate(self):
        sql = (
            "SELECT t.a, COUNT(*), COUNT(u.c), SUM(u.c), MIN(u.c), MAX(t.b) "
            "FROM t LEFT JOIN u ON t.a = u.a GROUP BY t.a"
        )
        return sql, False

    def order_limit(self):
        direction = self.rng.choice(["ASC", "DESC"])
        limit = self.rng.randrange(0, 12)
        where = self.predicate(["t.a", "t.b", "u.c"])
        sql = (
            "SELECT t.id, u.id FROM t JOIN u ON t.a = u.a "
            f"WHERE {where} "
            f"ORDER BY t.id {direction}, u.id {direction} LIMIT {limit}"
        )
        return sql, True  # unique total order: compare exactly

    def aggregate_filter(self):
        where = self.predicate(["a", "b"])
        sql = (
            "SELECT COUNT(*), COUNT(b), SUM(b), MIN(a), MAX(b), AVG(a) "
            f"FROM t WHERE {where}"
        )
        return sql, False

    def next_query(self):
        shape = self.rng.choice(
            [
                self.single_table,
                self.inner_join,
                self.left_join,
                self.join_aggregate,
                self.order_limit,
                self.aggregate_filter,
            ]
        )
        return shape()


def _fuzz_setup(rng, storage_config=None):
    storage = StorageEngine(storage_config)
    engine = QueryEngine(Catalog(), storage)
    connection = sqlite3.connect(":memory:")
    ddl_t = (
        "CREATE TABLE t (id INTEGER PRIMARY KEY, a INTEGER NOT NULL, "
        "b INTEGER, s TEXT{chain})"
    )
    ddl_u = (
        "CREATE TABLE u (id INTEGER PRIMARY KEY, a INTEGER NOT NULL, "
        "c INTEGER{chain})"
    )
    engine.execute(ddl_t.format(chain=", CHAIN (a)"))
    engine.execute(ddl_u.format(chain=", CHAIN (a)"))
    connection.execute(ddl_t.format(chain=""))
    connection.execute(ddl_u.format(chain=""))
    for i in range(rng.randrange(5, 30)):
        row = (
            i,
            rng.randrange(0, 8),
            None if rng.random() < 0.3 else rng.randrange(-5, 6),
            None if rng.random() < 0.3 else rng.choice(["x", "y", "zz"]),
        )
        engine.catalog.lookup("t").store.insert(row)
        connection.execute("INSERT INTO t VALUES (?, ?, ?, ?)", row)
    for i in range(rng.randrange(0, 20)):
        row = (
            i,
            rng.randrange(0, 8),
            None if rng.random() < 0.3 else rng.randrange(0, 50),
        )
        engine.catalog.lookup("u").store.insert(row)
        connection.execute("INSERT INTO u VALUES (?, ?, ?)", row)
    return storage, engine, connection


def _fuzz_corpus(seed, queries, reseed_data_every=25, storage_config=None):
    """Run ``queries`` random queries; divergence fails with a repro tag.

    Every query runs twice: the second execution is served from the
    plan cache and must return the same rows, so the whole corpus
    doubles as a cache-coherence sweep.
    """
    rng = random.Random(seed)
    fuzzer = QueryFuzzer(rng)
    storage = engine = connection = None
    for index in range(queries):
        if index % reseed_data_every == 0:
            storage, engine, connection = _fuzz_setup(rng, storage_config)
        sql, exact_order = fuzzer.next_query()
        tag = f"seed={seed} index={index} sql={sql!r}"
        ours = engine.execute(sql).rows
        cached = engine.execute(sql).rows
        theirs = [tuple(r) for r in connection.execute(sql).fetchall()]
        if exact_order:
            assert list(ours) == theirs, tag
            assert list(cached) == theirs, tag
        else:
            assert len(ours) == len(theirs), tag
            assert _canon(ours) == _canon(theirs), tag
            assert _canon(cached) == _canon(theirs), tag
    storage.verify_now()


@pytest.mark.parametrize("seed", [11, 29, 47])
def test_fuzzer_ci_corpus(seed):
    _fuzz_corpus(seed, queries=60)


@pytest.mark.parametrize("batch_size", [1, 7, 256])
@pytest.mark.parametrize("plan_cache_size", [0, 128])
def test_fuzzer_batch_and_cache_matrix(batch_size, plan_cache_size):
    """Batch granularity × cache-on/off never changes results.

    batch_size=1 degenerates the columnar pipeline to row-at-a-time;
    plan_cache_size=0 disables plan reuse entirely — every combination
    must agree with SQLite on the same corpus.
    """
    from repro.storage.config import StorageConfig

    config = StorageConfig(
        batch_size=batch_size, plan_cache_size=plan_cache_size
    )
    _fuzz_corpus(5, queries=30, storage_config=config)


@pytest.mark.slow
@pytest.mark.parametrize("seed", list(range(8)))
def test_fuzzer_deep_corpus(seed):
    _fuzz_corpus(seed, queries=400)
