"""Multi-statement transactions: undo logging and table-level 2PL."""

import threading

import pytest

from repro.core.config import VeriDBConfig
from repro.core.database import VeriDB
from repro.errors import TransactionAborted, TransactionError


@pytest.fixture
def db():
    database = VeriDB(VeriDBConfig(key_seed=77))
    database.sql(
        "CREATE TABLE acct (id INTEGER PRIMARY KEY, balance INTEGER, "
        "owner TEXT)"
    )
    database.sql(
        "INSERT INTO acct VALUES (1, 100, 'a'), (2, 200, 'b'), (3, 300, 'c')"
    )
    return database


def test_commit_applies(db):
    session = db.session()
    session.execute("BEGIN")
    session.execute("UPDATE acct SET balance = balance - 50 WHERE id = 1")
    session.execute("UPDATE acct SET balance = balance + 50 WHERE id = 2")
    session.execute("COMMIT")
    assert db.sql("SELECT balance FROM acct ORDER BY id").rows == [
        (50,),
        (250,),
        (300,),
    ]
    db.verify_now()


def test_rollback_undoes_everything(db):
    session = db.session()
    session.execute("BEGIN")
    session.execute("UPDATE acct SET balance = 0")
    session.execute("DELETE FROM acct WHERE id = 3")
    session.execute("INSERT INTO acct VALUES (9, 900, 'z')")
    assert session.execute("SELECT COUNT(*) FROM acct").rows == [(3,)]
    session.execute("ROLLBACK")
    assert db.sql("SELECT * FROM acct ORDER BY id").rows == [
        (1, 100, "a"),
        (2, 200, "b"),
        (3, 300, "c"),
    ]
    db.verify_now()  # the undo replay kept the memory checker consistent


def test_rollback_pk_change(db):
    session = db.session()
    session.execute("BEGIN")
    session.execute("UPDATE acct SET id = 50 WHERE id = 1")
    session.execute("ROLLBACK")
    assert db.sql("SELECT id FROM acct ORDER BY id").rows == [(1,), (2,), (3,)]


def test_statement_failure_aborts(db):
    session = db.session()
    session.execute("BEGIN")
    session.execute("UPDATE acct SET balance = 0 WHERE id = 1")
    with pytest.raises(TransactionAborted):
        # duplicate pk: the multi-row insert fails midway
        session.execute("INSERT INTO acct VALUES (8, 1, 'x'), (2, 1, 'y')")
    assert not session.in_transaction
    # both the partial insert (8) and the earlier update were undone
    assert db.sql("SELECT COUNT(*) FROM acct").rows == [(3,)]
    assert db.sql("SELECT balance FROM acct WHERE id = 1").rows == [(100,)]


def test_begin_nested_rejected(db):
    session = db.session()
    session.execute("BEGIN")
    with pytest.raises(TransactionError):
        session.execute("BEGIN")


def test_commit_without_begin_rejected(db):
    with pytest.raises(TransactionError):
        db.session().execute("COMMIT")
    with pytest.raises(TransactionError):
        db.session().execute("ROLLBACK")


def test_ddl_inside_transaction_rejected(db):
    session = db.session()
    session.execute("BEGIN")
    with pytest.raises(TransactionError):
        session.execute("CREATE TABLE nope (id INTEGER PRIMARY KEY)")
    session.execute("ROLLBACK")


def test_autocommit_outside_transaction(db):
    session = db.session()
    session.execute("INSERT INTO acct VALUES (4, 400, 'd')")
    assert db.sql("SELECT COUNT(*) FROM acct").rows == [(4,)]
    assert not session.in_transaction


def test_start_transaction_alias(db):
    session = db.session()
    session.execute("START TRANSACTION")
    assert session.in_transaction
    session.execute("COMMIT")


def test_context_manager_rolls_back(db):
    with db.session() as session:
        session.execute("BEGIN")
        session.execute("DELETE FROM acct")
    assert db.sql("SELECT COUNT(*) FROM acct").rows == [(3,)]


def test_conflicting_sessions_serialize(db):
    first = db.session(name="first")
    second = db.session(name="second", lock_timeout=0.2)
    first.execute("BEGIN")
    first.execute("UPDATE acct SET balance = 0 WHERE id = 1")
    second.execute("BEGIN")
    with pytest.raises(TransactionAborted):
        second.execute("UPDATE acct SET balance = 1 WHERE id = 2")
    assert not second.in_transaction  # aborted and cleaned up
    first.execute("COMMIT")
    # the lock is free again
    third = db.session(name="third", lock_timeout=0.2)
    third.execute("BEGIN")
    third.execute("UPDATE acct SET balance = 7 WHERE id = 3")
    third.execute("COMMIT")


def test_lock_released_lets_waiter_proceed(db):
    first = db.session(name="first")
    results = []

    def contender():
        session = db.session(name="second", lock_timeout=5.0)
        session.execute("BEGIN")
        session.execute("UPDATE acct SET balance = 999 WHERE id = 1")
        session.execute("COMMIT")
        results.append("done")

    first.execute("BEGIN")
    first.execute("UPDATE acct SET balance = 111 WHERE id = 1")
    thread = threading.Thread(target=contender)
    thread.start()
    first.execute("COMMIT")
    thread.join(timeout=10)
    assert results == ["done"]
    assert db.sql("SELECT balance FROM acct WHERE id = 1").rows == [(999,)]


def test_reads_also_take_locks(db):
    """Serializable: a reader blocks a writer on the same table."""
    reader = db.session(name="reader")
    writer = db.session(name="writer", lock_timeout=0.2)
    reader.execute("BEGIN")
    reader.execute("SELECT COUNT(*) FROM acct")
    writer.execute("BEGIN")
    with pytest.raises(TransactionAborted):
        writer.execute("DELETE FROM acct")
    reader.execute("COMMIT")


def test_subquery_tables_locked(db):
    db.sql("CREATE TABLE other (id INTEGER PRIMARY KEY)")
    db.sql("INSERT INTO other VALUES (1)")
    session = db.session()
    session.execute("BEGIN")
    session.execute(
        "SELECT * FROM acct WHERE id IN (SELECT id FROM other)"
    )
    assert set(session._held) == {"acct", "other"}
    session.execute("COMMIT")


def test_insert_select_transactional(db):
    db.sql("CREATE TABLE archive (id INTEGER PRIMARY KEY, balance INTEGER)")
    session = db.session()
    session.execute("BEGIN")
    session.execute("INSERT INTO archive SELECT id, balance FROM acct")
    session.execute("ROLLBACK")
    assert db.sql("SELECT COUNT(*) FROM archive").rows == [(0,)]


# ----------------------------------------------------------------------
# lock-registry hygiene (DDL-churn leak regression)
# ----------------------------------------------------------------------
def test_drop_table_evicts_txn_lock(db):
    from repro.sql.session import _registry_for

    registry = _registry_for(db.engine)
    session = db.session()
    session.execute("BEGIN")
    session.execute("SELECT COUNT(*) FROM acct")
    session.execute("COMMIT")
    assert "acct" in registry._locks
    session.execute("DROP TABLE acct")
    assert "acct" not in registry._locks


def test_ddl_churn_does_not_leak_locks(db):
    """A temp-table churn workload must not grow the registry forever."""
    from repro.sql.session import _registry_for

    registry = _registry_for(db.engine)
    session = db.session()
    baseline = len(registry)
    for i in range(50):
        session.execute(f"CREATE TABLE tmp_{i} (id INTEGER PRIMARY KEY)")
        session.execute("BEGIN")
        session.execute(f"INSERT INTO tmp_{i} VALUES (1)")
        session.execute("COMMIT")
        session.execute(f"DROP TABLE tmp_{i}")
    # every tmp_i lock was evicted with its table
    assert len(registry) == baseline
    assert not any(k.startswith("tmp_") for k in registry._locks)


def test_recreated_table_gets_fresh_lock(db):
    from repro.sql.session import _registry_for

    registry = _registry_for(db.engine)
    session = db.session()
    session.execute("CREATE TABLE ephemeral (id INTEGER PRIMARY KEY)")
    old = registry.lock_for("ephemeral")
    session.execute("DROP TABLE ephemeral")
    session.execute("CREATE TABLE ephemeral (id INTEGER PRIMARY KEY)")
    assert registry.lock_for("ephemeral") is not old


def test_eviction_safe_while_lock_held(db):
    """A holder keeps its reference; eviction never corrupts release."""
    from repro.sql.session import _registry_for

    registry = _registry_for(db.engine)
    session = db.session()
    session.execute("BEGIN")
    session.execute("UPDATE acct SET balance = 1 WHERE id = 1")
    # another admin path drops knowledge of the lock mid-transaction
    registry.evict("acct")
    session.execute("COMMIT")  # releases the held reference cleanly
    assert db.sql("SELECT balance FROM acct WHERE id = 1").rows == [(1,)]
