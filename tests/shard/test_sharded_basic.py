"""ShardedDatabase surface: DDL, routing, pushdown, EXPLAIN, portal."""

import pytest

from repro.core.config import ShardConfig, VeriDBConfig
from repro.errors import PlanningError, StorageError
from repro.obs.metrics import MetricsRegistry
from repro.shard import ShardedDatabase


def fleet(**kwargs):
    kwargs.setdefault("shard_count", 3)
    kwargs.setdefault("base", VeriDBConfig(key_seed=11))
    return ShardedDatabase(ShardConfig(**kwargs), registry=MetricsRegistry())


def counter(db, name):
    snap = db.obs.snapshot().get(name)
    return 0 if snap is None else snap["value"]


@pytest.fixture
def db():
    with fleet() as db:
        db.execute(
            "CREATE TABLE users (id INT PRIMARY KEY, city TEXT, "
            "score INT, CHAIN (score))"
        )
        db.load_rows(
            "users",
            [
                (i, ["lyon", "oslo", "kyiv"][i % 3], i * 10)
                for i in range(30)
            ],
        )
        yield db


# ----------------------------------------------------------------------
# DDL and data placement
# ----------------------------------------------------------------------
def test_create_without_primary_key_rejected():
    with fleet() as db:
        with pytest.raises(PlanningError):
            db.execute("CREATE TABLE bad (id INT)")


def test_rows_are_partitioned_across_workers(db):
    per_shard = db.router.broadcast("row_count", {"table": "users"})
    assert sum(per_shard) == 30
    # blake2b placement over 30 distinct keys should touch every shard
    assert all(count > 0 for count in per_shard)
    assert db.table("users").row_count == 30


def test_drop_table_broadcasts(db):
    db.execute("DROP TABLE users")
    assert "users" not in db.catalog.table_names()
    for link in db.links:
        assert "users" not in link.worker.db.catalog.table_names()


# ----------------------------------------------------------------------
# DML routing
# ----------------------------------------------------------------------
def test_point_lookup_and_update_delete(db):
    assert db.execute("SELECT city FROM users WHERE id = 7").rows == [("oslo",)]
    db.execute("UPDATE users SET city = 'rome' WHERE id = 7")
    assert db.execute("SELECT city FROM users WHERE id = 7").rows == [("rome",)]
    db.execute("DELETE FROM users WHERE id = 7")
    assert db.execute("SELECT * FROM users WHERE id = 7").rows == []
    assert db.table("users").row_count == 29


def test_duplicate_primary_key_rejected(db):
    with pytest.raises(StorageError, match="duplicate primary key"):
        db.load_rows("users", [(3, "lyon", 0)])


def test_non_pk_shard_key_keeps_global_pk_uniqueness():
    with fleet(shard_keys={"events": "region"}) as db:
        db.execute(
            "CREATE TABLE events (id INT PRIMARY KEY, region INT, v INT)"
        )
        db.load_rows("events", [(1, 10, 0), (2, 20, 0), (3, 30, 0)])
        # same pk, different region → would land on a different shard;
        # the proxy must still see the duplicate fleet-wide
        with pytest.raises(StorageError, match="duplicate primary key"):
            db.load_rows("events", [(1, 20, 1)])
        # update that moves the shard key relocates the row
        db.execute("UPDATE events SET region = 99 WHERE id = 2")
        assert db.execute(
            "SELECT region FROM events WHERE id = 2"
        ).rows == [(99,)]
        assert db.table("events").row_count == 3


def test_chain_scan_merges_sorted_runs(db):
    rows = db.execute(
        "SELECT id, score FROM users WHERE score BETWEEN 40 AND 80 "
        "ORDER BY score"
    ).rows
    assert rows == [(4, 40), (5, 50), (6, 60), (7, 70), (8, 80)]


# ----------------------------------------------------------------------
# pushdown and pruning
# ----------------------------------------------------------------------
def test_aggregate_pushdown_merges_partials(db):
    before = counter(db, "shard.pushdown_aggregate")
    result = db.execute(
        "SELECT city, COUNT(*), SUM(score), AVG(score) FROM users "
        "GROUP BY city ORDER BY city"
    )
    assert counter(db, "shard.pushdown_aggregate") == before + 1
    expected = {}
    for i in range(30):
        city = ["lyon", "oslo", "kyiv"][i % 3]
        n, s = expected.get(city, (0, 0))
        expected[city] = (n + 1, s + i * 10)
    assert result.rows == [
        (city, n, s, s / n) for city, (n, s) in sorted(expected.items())
    ]


def test_global_aggregate_over_empty_table():
    with fleet() as db:
        db.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
        assert db.execute("SELECT COUNT(*), SUM(v) FROM t").rows == [(0, None)]


def test_row_pushdown_with_order_limit(db):
    before = counter(db, "shard.pushdown_select")
    result = db.execute(
        "SELECT id, score FROM users WHERE score >= 250 "
        "ORDER BY score DESC LIMIT 4"
    )
    assert counter(db, "shard.pushdown_select") == before + 1
    assert result.rows == [(29, 290), (28, 280), (27, 270), (26, 260)]


def test_pruned_point_query(db):
    before = counter(db, "shard.partitions_pruned")
    result = db.execute("SELECT city FROM users WHERE id = ?", params=(12,))
    assert result.rows == [("lyon",)]
    assert counter(db, "shard.partitions_pruned") == before + 2  # 3 shards - 1


def test_prune_off_same_results():
    rows_on, rows_off = [], []
    for prune in (True, False):
        with fleet(prune=prune) as db:
            db.execute("CREATE TABLE t (k INT PRIMARY KEY, v INT)")
            db.load_rows("t", [(i, i % 5) for i in range(40)])
            (rows_on if prune else rows_off).append(
                db.execute("SELECT v FROM t WHERE k = 17").rows
            )
            assert counter(db, "shard.partitions_pruned") == (
                2 if prune else 0
            )
    assert rows_on == rows_off


def test_range_partitioned_table_prunes_ranges():
    with fleet(shard_ranges={"t": (100, 200)}) as db:
        db.execute("CREATE TABLE t (k INT PRIMARY KEY, v INT)")
        db.load_rows("t", [(i, i) for i in range(0, 300, 10)])
        before = counter(db, "shard.partitions_pruned")
        rows = db.execute("SELECT k FROM t WHERE k >= 210 ORDER BY k").rows
        assert rows == [(k,) for k in range(210, 300, 10)]
        assert counter(db, "shard.partitions_pruned") == before + 2


def test_join_falls_back_to_gather(db):
    db.execute("CREATE TABLE cities (name TEXT PRIMARY KEY, pop INT)")
    db.load_rows("cities", [("lyon", 500), ("oslo", 700), ("kyiv", 3000)])
    before = counter(db, "shard.fallback_gather")
    result = db.execute(
        "SELECT u.id, c.pop FROM users u JOIN cities c ON u.city = c.name "
        "WHERE u.id < 2 ORDER BY u.id"
    )
    assert counter(db, "shard.fallback_gather") > before
    assert result.rows == [(0, 500), (1, 700)]


# ----------------------------------------------------------------------
# EXPLAIN / prepare / portal
# ----------------------------------------------------------------------
def test_explain_shows_scatter_gather(db):
    plan = "\n".join(
        line
        for (line,) in db.execute(
            "EXPLAIN SELECT city, SUM(score) FROM users GROUP BY city"
        ).rows
    )
    assert "ShardGather[agg]" in plan
    assert "shards=[0, 1, 2]" in plan
    assert plan.count("ShardFragment") == 3  # per-shard attribution


def test_explain_analyze_annotates_fragments(db):
    report = str(
        db.explain_analyze("SELECT city, COUNT(*) FROM users GROUP BY city")
    )
    assert "ShardGather" in report
    assert "rows=" in report


def test_prepared_statement_prunes_per_execution(db):
    stmt = db.prepare("SELECT city FROM users WHERE id = ?")
    assert stmt.execute((12,)).rows == [("lyon",)]
    assert stmt.execute((13,)).rows == [("oslo",)]
    base = counter(db, "shard.partitions_pruned")
    stmt.execute((14,))
    assert counter(db, "shard.partitions_pruned") == base + 2


def test_portal_round_trip(db):
    client = db.connect("tester")
    response = client.execute("SELECT COUNT(*) FROM users")
    assert tuple(response.rows) == ((30,),)


def test_query_service_dispatches_over_the_fleet(db):
    """The multi-tenant service front-end is backend-agnostic: pointed
    at a ShardedDatabase, tenants submit MAC'd queries through the
    coordinator portal and scatter-gather answers come back endorsed."""
    from repro.service import QueryService, ServiceConfig

    service = QueryService(db, ServiceConfig(max_workers=2), registry=db.obs)
    try:
        client = service.connect(service.register_tenant("acme"))
        result = client.execute(
            "SELECT city, COUNT(*) FROM users GROUP BY city"
        )
        assert sorted(result.rows) == [("kyiv", 10), ("lyon", 10), ("oslo", 10)]
        assert result.verified
        pruned = client.execute(
            "SELECT score FROM users WHERE id = ?", params=(9,)
        )
        assert tuple(pruned.rows) == ((90,),)
    finally:
        service.close()


def test_stats_and_epoch_round(db):
    db.verify_now()
    stats = db.stats()
    assert stats["shard_count"] == 3
    assert stats["fleet_round"] == 1
    assert stats["fleet_digest"] is not None
    assert counter(db, "shard.epoch_closes") == 1
