"""Two-phase cross-shard epoch close, desync and tamper detection."""

import pytest

from repro.core.config import ShardConfig, VeriDBConfig
from repro.errors import (
    IntegrityError,
    ProofError,
    RollbackDetected,
    ShardEpochDesync,
    VerificationFailure,
)
from repro.memory.adversary import Adversary
from repro.memory.cells import make_addr
from repro.obs.metrics import MetricsRegistry
from repro.shard import ShardedDatabase

SHARD_COUNTS = (1, 2, 4)

#: detection at the fleet level looks exactly like single-enclave
#: detection: the worker's typed alarm crosses the envelope intact
DETECTION_ERRORS = (
    VerificationFailure,
    ProofError,
    IntegrityError,
    RollbackDetected,
)


def fleet(shard_count):
    db = ShardedDatabase(
        ShardConfig(shard_count=shard_count, base=VeriDBConfig(key_seed=23)),
        registry=MetricsRegistry(),
    )
    db.execute("CREATE TABLE t (k INT PRIMARY KEY, v INT)")
    db.load_rows("t", [(i, i * 100) for i in range(20)])
    return db


@pytest.mark.parametrize("shard_count", SHARD_COUNTS)
def test_close_advances_every_worker_to_the_same_cut(shard_count):
    with fleet(shard_count) as db:
        db.verify_now()
        db.execute("UPDATE t SET v = 1 WHERE k = 3")
        db.verify_now()
        assert db.stats()["fleet_round"] == 2
        for link in db.links:
            assert link.worker.fleet_round == 2
            assert link.worker.fleet_digest == db.fleet_digest


@pytest.mark.parametrize("shard_count", SHARD_COUNTS)
def test_prepare_insists_on_the_next_round(shard_count):
    with fleet(shard_count) as db:
        db.verify_now()  # committed round 1 everywhere
        # a replayed close (round 1 again) and a skipped round both fail
        for bad_round in (1, 3):
            with pytest.raises(ShardEpochDesync):
                db.links[0].call("epoch_prepare", {"round": bad_round})


@pytest.mark.parametrize("shard_count", SHARD_COUNTS)
def test_commit_without_prepare_refused(shard_count):
    with fleet(shard_count) as db:
        with pytest.raises(ShardEpochDesync):
            db.links[0].call(
                "epoch_commit", {"round": 1, "fleet_digest": b"\x00" * 32}
            )


@pytest.mark.parametrize("shard_count", [2, 4])
def test_desynced_worker_aborts_the_fleet_close(shard_count):
    """A worker pushed ahead out-of-band refuses the fleet's next round."""
    with fleet(shard_count) as db:
        rogue = db.links[-1]
        rogue.call("epoch_prepare", {"round": 1})
        rogue.call("epoch_commit", {"round": 1, "fleet_digest": b"\x01" * 32})
        with pytest.raises(ShardEpochDesync):
            db.verify_now()
        assert db.stats()["fleet_round"] == 0  # the fleet did not advance


@pytest.mark.parametrize("shard_count", SHARD_COUNTS)
def test_corrupted_worker_fails_the_epoch_close(shard_count):
    """Flipping bytes inside one worker's verified memory is caught by
    that worker's own local pass during *prepare*, so the fleet close
    aborts with the same typed alarm a single enclave would raise."""
    with fleet(shard_count) as db:
        db.verify_now()
        pk = 5
        shard = db.table("t")._partitioner.shard_of(pk)
        worker_db = db.links[shard].worker.db
        table = worker_db.table("t")
        rid = table.indexes[0].search(pk)
        page = table.heap.get_page(rid.page_id)
        offset, _ = page.slot_offset_for_compaction(rid.slot)
        addr = make_addr(rid.page_id, offset)
        cell = worker_db.storage.memory.raw_read(addr)
        Adversary(worker_db.storage.memory).corrupt(
            addr, cell.data[:-1] + b"\xff"
        )
        with pytest.raises(DETECTION_ERRORS):
            db.verify_now()
        assert db.stats()["fleet_round"] == 1


@pytest.mark.parametrize("shard_count", [2, 4])
def test_untouched_shards_unaffected_by_neighbor_corruption(shard_count):
    """Detection is per-worker: the sibling shards still answer reads."""
    with fleet(shard_count) as db:
        pk = 5
        shard = db.table("t")._partitioner.shard_of(pk)
        worker_db = db.links[shard].worker.db
        table = worker_db.table("t")
        rid = table.indexes[0].search(pk)
        page = table.heap.get_page(rid.page_id)
        offset, _ = page.slot_offset_for_compaction(rid.slot)
        addr = make_addr(rid.page_id, offset)
        cell = worker_db.storage.memory.raw_read(addr)
        Adversary(worker_db.storage.memory).corrupt(
            addr, cell.data[:-1] + b"\xff"
        )
        with pytest.raises(DETECTION_ERRORS):
            db.verify_now()
        # a point read on an untouched shard still verifies and answers
        other_pk = next(
            k
            for k in range(20)
            if db.table("t")._partitioner.shard_of(k) != shard
        )
        rows = db.execute(
            "SELECT v FROM t WHERE k = ?", params=(other_pk,)
        ).rows
        assert rows == [(other_pk * 100,)]
