"""Adversarial transport: tamper, replay, drop, splice — at 1/2/4 shards.

The coordinator↔worker wire is untrusted, exactly like host memory in
the single-enclave model. Every attack here manipulates raw reply bytes
through the link's ``reply_filter`` hook and must surface as the typed
error the envelope layer promises — never as silent data corruption.
"""

import pickle

import pytest

from repro.core.config import ShardConfig, VeriDBConfig
from repro.errors import (
    ShardReplyLost,
    ShardReplyReplayed,
    ShardReplyTampered,
)
from repro.obs.metrics import MetricsRegistry
from repro.shard import ShardedDatabase

SHARD_COUNTS = (1, 2, 4)


def fleet(shard_count):
    db = ShardedDatabase(
        ShardConfig(shard_count=shard_count, base=VeriDBConfig(key_seed=5)),
        registry=MetricsRegistry(),
    )
    db.execute("CREATE TABLE t (k INT PRIMARY KEY, v INT)")
    db.load_rows("t", [(i, i * 2) for i in range(20)])
    return db


def counter(db, name):
    snap = db.obs.snapshot().get(name)
    return 0 if snap is None else snap["value"]


def total(db):
    return db.execute("SELECT SUM(v) FROM t").rows[0][0]


@pytest.mark.parametrize("shard_count", SHARD_COUNTS)
def test_tampered_reply_detected(shard_count):
    with fleet(shard_count) as db:
        assert total(db) == 380
        link = db.links[-1]

        def flip_payload_byte(reply):
            # flip one byte of the pickled body, leave the MAC alone
            return reply[:-1] + bytes([reply[-1] ^ 0xFF])

        link.reply_filter = flip_payload_byte
        with pytest.raises(ShardReplyTampered):
            total(db)
        assert counter(db, "shard.reply_tampered") == 1
        link.reply_filter = None
        assert total(db) == 380  # link recovers once the attack stops


@pytest.mark.parametrize("shard_count", SHARD_COUNTS)
def test_forged_status_rejected_before_unpickle(shard_count):
    """Rewriting ok→err (or any body byte) without the key fails closed."""
    with fleet(shard_count) as db:
        link = db.links[0]

        def forge_body(reply):
            head = reply[: 24 + 32]
            return head + pickle.dumps(("ok", {"rows": [], "forged": True}))

        link.reply_filter = forge_body
        with pytest.raises(ShardReplyTampered):
            total(db)


@pytest.mark.parametrize("shard_count", SHARD_COUNTS)
def test_replayed_reply_detected(shard_count):
    with fleet(shard_count) as db:
        link = db.links[0]
        stash = []

        def record(reply):
            stash.append(reply)
            return reply

        link.reply_filter = record
        assert total(db) == 380
        assert stash

        def redeliver(_reply):
            # deliver a perfectly authentic but stale reply
            return stash[0]

        link.reply_filter = redeliver
        with pytest.raises(ShardReplyReplayed):
            total(db)
        assert counter(db, "shard.reply_replayed") == 1


@pytest.mark.parametrize("shard_count", SHARD_COUNTS)
def test_dropped_reply_detected(shard_count):
    with fleet(shard_count) as db:
        db.links[-1].reply_filter = lambda _reply: None
        with pytest.raises(ShardReplyLost):
            total(db)
        assert counter(db, "shard.reply_lost") == 1


@pytest.mark.parametrize("shard_count", [2, 4])
def test_spliced_reply_from_other_shard_detected(shard_count):
    """Shard B's authentic reply must not pass as shard A's."""
    with fleet(shard_count) as db:
        victim, donor = db.links[0], db.links[1]
        donor_replies = []

        def record(reply):
            donor_replies.append(reply)
            return reply

        donor.reply_filter = record
        assert total(db) == 380  # populate the stash
        victim.reply_filter = lambda _reply: donor_replies[-1]
        with pytest.raises(ShardReplyTampered):
            total(db)


@pytest.mark.parametrize("shard_count", SHARD_COUNTS)
def test_attack_does_not_poison_results(shard_count):
    """After any detected attack, clean queries return clean answers."""
    with fleet(shard_count) as db:
        link = db.links[0]
        for attack in (
            lambda r: r[:-1] + bytes([r[-1] ^ 1]),
            lambda r: None,
        ):
            link.reply_filter = attack
            with pytest.raises((ShardReplyTampered, ShardReplyLost)):
                total(db)
            link.reply_filter = None
            assert total(db) == 380
        db.verify_now()  # and the fleet still closes its epoch
