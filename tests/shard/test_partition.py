"""Partitioner placement and predicate pruning (repro.shard.partition)."""

import pytest

from repro.core.config import ShardConfig
from repro.errors import ShardRoutingError
from repro.shard import HashPartitioner, RangePartitioner, partitioner_for
from repro.shard.partition import prune_shards
from repro.sql.parser import parse_statement


def where_of(sql: str):
    return parse_statement(sql).where


ALL4 = set(range(4))


# ----------------------------------------------------------------------
# placement
# ----------------------------------------------------------------------
def test_hash_placement_is_stable_and_total():
    p = HashPartitioner(4)
    placements = {k: p.shard_of(k) for k in range(1000)}
    # deterministic across instances (blake2b over the record encoding,
    # never Python's randomized hash())
    q = HashPartitioner(4)
    assert all(q.shard_of(k) == s for k, s in placements.items())
    assert all(0 <= s < 4 for s in placements.values())
    # reasonable balance on a uniform key set
    per_shard = [list(placements.values()).count(i) for i in range(4)]
    assert min(per_shard) > 125  # perfect split is 250


def test_hash_placement_differs_by_type():
    p = HashPartitioner(8)
    # record encoding is typed: int 1 and string "1" may land anywhere,
    # but must each be stable
    assert p.shard_of(1) == p.shard_of(1)
    assert p.shard_of("1") == p.shard_of("1")


def test_range_placement_boundaries():
    p = RangePartitioner(3, (10, 20))
    assert [p.shard_of(v) for v in (-5, 0, 9)] == [0, 0, 0]
    assert [p.shard_of(v) for v in (10, 15, 19)] == [1, 1, 1]
    assert [p.shard_of(v) for v in (20, 21, 10**9)] == [2, 2, 2]
    assert p.shard_of(None) == 0  # NULLs sort low


def test_range_partitioner_boundary_count_enforced():
    with pytest.raises(ShardRoutingError):
        RangePartitioner(3, (10,))


def test_partitioner_for_selects_strategy():
    config = ShardConfig(shard_count=3, shard_ranges={"orders": (10, 20)})
    assert isinstance(partitioner_for(config, "orders"), RangePartitioner)
    assert isinstance(partitioner_for(config, "ORDERS"), RangePartitioner)
    assert isinstance(partitioner_for(config, "other"), HashPartitioner)


# ----------------------------------------------------------------------
# pruning: hash partitioner (equality only)
# ----------------------------------------------------------------------
def test_hash_prunes_equality():
    p = HashPartitioner(4)
    shards = prune_shards(where_of("SELECT * FROM t WHERE k = 7"), "k", p)
    assert shards == {p.shard_of(7)}


def test_hash_prunes_flipped_equality():
    p = HashPartitioner(4)
    shards = prune_shards(where_of("SELECT * FROM t WHERE 7 = k"), "k", p)
    assert shards == {p.shard_of(7)}


def test_hash_cannot_prune_ranges():
    p = HashPartitioner(4)
    assert prune_shards(where_of("SELECT * FROM t WHERE k > 7"), "k", p) == ALL4
    assert (
        prune_shards(
            where_of("SELECT * FROM t WHERE k BETWEEN 1 AND 3"), "k", p
        )
        == ALL4
    )


def test_hash_prunes_in_list():
    p = HashPartitioner(4)
    shards = prune_shards(
        where_of("SELECT * FROM t WHERE k IN (1, 2, 3)"), "k", p
    )
    assert shards == {p.shard_of(1), p.shard_of(2), p.shard_of(3)}
    # NOT IN proves nothing
    assert (
        prune_shards(where_of("SELECT * FROM t WHERE k NOT IN (1)"), "k", p)
        == ALL4
    )


def test_bound_parameters_prune_per_execution():
    p = HashPartitioner(4)
    where = where_of("SELECT * FROM t WHERE k = ?")
    assert prune_shards(where, "k", p, params=(7,)) == {p.shard_of(7)}
    assert prune_shards(where, "k", p, params=(8,)) == {p.shard_of(8)}
    # unbound parameter: no pruning, never an error
    assert prune_shards(where, "k", p, params=()) == ALL4


def test_conjuncts_intersect_and_non_key_is_ignored():
    p = HashPartitioner(4)
    where = where_of("SELECT * FROM t WHERE k = 7 AND v > 100")
    assert prune_shards(where, "k", p) == {p.shard_of(7)}
    # contradictory equalities intersect to the empty set
    where = where_of("SELECT * FROM t WHERE k = 1 AND k = 2")
    if p.shard_of(1) != p.shard_of(2):
        assert prune_shards(where, "k", p) == set()


def test_disjunction_blocks_pruning():
    p = HashPartitioner(4)
    where = where_of("SELECT * FROM t WHERE k = 1 OR v = 2")
    assert prune_shards(where, "k", p) == ALL4


def test_qualified_ref_respects_binding():
    p = HashPartitioner(4)
    where = where_of("SELECT * FROM t WHERE t.k = 7")
    assert prune_shards(where, "k", p, binding="t") == {p.shard_of(7)}
    assert prune_shards(where, "k", p, binding="u") == ALL4


def test_null_comparison_never_prunes():
    p = HashPartitioner(4)
    where = where_of("SELECT * FROM t WHERE k = ?")
    assert prune_shards(where, "k", p, params=(None,)) == ALL4


# ----------------------------------------------------------------------
# pruning: range partitioner (equality and ranges)
# ----------------------------------------------------------------------
def test_range_prunes_ranges():
    p = RangePartitioner(4, (10, 20, 30))
    assert prune_shards(
        where_of("SELECT * FROM t WHERE k >= 20"), "k", p
    ) == {2, 3}
    assert prune_shards(
        where_of("SELECT * FROM t WHERE k <= 9"), "k", p
    ) == {0}
    # an exclusive bound sitting exactly on a boundary keeps the
    # boundary's shard: pruning may over-approximate, never under
    assert prune_shards(
        where_of("SELECT * FROM t WHERE k < 10"), "k", p
    ) == {0, 1}
    assert prune_shards(
        where_of("SELECT * FROM t WHERE k BETWEEN 12 AND 25"), "k", p
    ) == {1, 2}
    assert prune_shards(
        where_of("SELECT * FROM t WHERE 20 <= k"), "k", p
    ) == {2, 3}


def test_range_prunes_closed_interval_from_conjuncts():
    p = RangePartitioner(4, (10, 20, 30))
    where = where_of("SELECT * FROM t WHERE k >= 12 AND k < 18")
    assert prune_shards(where, "k", p) == {1}
