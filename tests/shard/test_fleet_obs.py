"""Fleet observability, system level (the PR's acceptance criteria).

* trace propagation: a scattered ``explain_analyze`` stitches one
  remote segment per worker, with real per-operator stats, and the
  stitched counted totals equal the sum of the worker registry deltas
  (the sharded extension of the PR 5 exactness invariant);
* the same stitching works under the ``process`` transport, where the
  segment genuinely crossed a process boundary inside a MAC'd reply;
* metrics federation folds worker registry deltas into labeled
  coordinator series, and the fleet exposition lints clean;
* ``health()`` raises ``worker_down`` when a worker is killed and
  clears it after ``restart_worker``, with both events in the JSONL
  sink — and surfaces through ``QueryService.health()``.
"""

from repro.core.config import ShardConfig, VeriDBConfig
from repro.obs import (
    JsonlEventSink,
    MetricsRegistry,
    lint_prometheus,
    render_prometheus,
    scoped_event_sink,
)
from repro.shard import ShardedDatabase

#: (worker registry counter, OpStats/segment field) pairs that must
#: match exactly — same table as tests/sql/test_explain_analyze.py
COUNTED = (
    ("memory.verified_reads", "verified_reads"),
    ("memory.cache_hits", "cache_hits"),
    ("memory.cache_misses", "cache_misses"),
    ("sgx.ecalls", "ecalls"),
    ("sgx.batched_read_crossings", "batched_read_crossings"),
    ("sgx.epc_swaps", "epc_swaps"),
    ("sgx.simulated_cycles", "simulated_cycles"),
)


def counter_value(snapshot: dict, name: str) -> float:
    return snapshot.get(name, {}).get("value", 0)


def fleet(**kwargs):
    kwargs.setdefault("shard_count", 2)
    kwargs.setdefault("base", VeriDBConfig(key_seed=13))
    return ShardedDatabase(ShardConfig(**kwargs), registry=MetricsRegistry())


def load_users(db, rows=40):
    db.execute(
        "CREATE TABLE users (id INT PRIMARY KEY, city TEXT, score INT)"
    )
    db.load_rows(
        "users",
        [(i, ["lyon", "oslo"][i % 2], i * 10) for i in range(rows)],
    )


# ----------------------------------------------------------------------
# trace propagation + stitching (inproc: exactness against registries)
# ----------------------------------------------------------------------
def test_stitched_totals_equal_worker_registry_deltas():
    with fleet() as db:
        load_users(db)
        workers = [link.worker for link in db.links]
        before = [worker.obs.snapshot() for worker in workers]
        result = db.explain_analyze(
            "SELECT city, COUNT(*), SUM(score) FROM users "
            "WHERE score > 50 GROUP BY city"
        )
        after = [worker.obs.snapshot() for worker in workers]

    segments = result.remote_segments()
    assert len(segments) == 2
    assert sorted(segment["shard"] for segment in segments) == [0, 1]
    remote = result.remote_totals()
    for counter_name, field in COUNTED:
        delta = sum(
            counter_value(after[i], counter_name)
            - counter_value(before[i], counter_name)
            for i in range(len(workers))
        )
        assert remote[field] == delta, (
            f"{field}: stitched remote total {remote[field]} != "
            f"summed worker registry delta {delta} ({counter_name})"
        )
        # and per-shard: each segment matches its own worker exactly
        for i, segment in enumerate(
            sorted(segments, key=lambda s: s["shard"])
        ):
            assert segment["totals"][field] == counter_value(
                after[i], counter_name
            ) - counter_value(before[i], counter_name)
    # the workers actually did verified work that the coordinator's own
    # trace cannot see (its local totals exclude remote costs)
    assert remote["verified_reads"] > 0
    assert result.totals()["verified_reads"] == 0


def test_segment_trees_carry_per_operator_stats():
    with fleet() as db:
        load_users(db)
        result = db.explain_analyze("SELECT * FROM users WHERE score >= 100")

    for segment in result.remote_segments():
        labels = []

        def walk(node):
            labels.append(node["label"])
            for child in node["children"]:
                walk(child)

        walk(segment["plan"])
        assert any("SeqScan" in label for label in labels)
        # the scan operator, not just the fragment, owns the reads
        scan_nodes = [
            node
            for node in _iter_nodes(segment["plan"])
            if "SeqScan" in node["label"]
        ]
        assert scan_nodes and scan_nodes[0]["verified_reads"] > 0
    # rendering shows the stitched worker subtrees and timings
    assert "[shard 0]" in result.text
    assert "remote totals:" in result.text
    assert "wire=" in result.text


def _iter_nodes(node):
    yield node
    for child in node["children"]:
        yield from _iter_nodes(child)


def test_untraced_execution_still_routes_and_labels_latency():
    with fleet() as db:
        load_users(db)
        result = db.execute("SELECT COUNT(*) FROM users")
        assert result.rows[0][0] == 40
        snap = db.obs.snapshot()
        # labeled per-shard latency series replaced the name-mangled
        # shard.<id>.request_seconds metrics
        assert 'shard.request_seconds{shard="0"}' in snap
        assert "shard.0.request_seconds" not in snap
        assert snap['shard.envelope_wire_seconds{shard="0"}']["count"] > 0


# ----------------------------------------------------------------------
# process transport: stitching across a real process boundary
# ----------------------------------------------------------------------
def test_process_transport_explain_shows_worker_operator_stats():
    with fleet(transport="process", request_timeout=30.0) as db:
        load_users(db)
        result = db.explain_analyze(
            "SELECT city, AVG(score) FROM users GROUP BY city"
        )
        segments = result.remote_segments()
        assert len(segments) == 2
        for segment in segments:
            scans = [
                node
                for node in _iter_nodes(segment["plan"])
                if "SeqScan" in node["label"]
            ]
            assert scans and scans[0]["verified_reads"] > 0
            assert segment["totals"]["verified_reads"] > 0
        assert result.remote_totals()["verified_reads"] > 0


# ----------------------------------------------------------------------
# metrics federation
# ----------------------------------------------------------------------
def test_federation_folds_labeled_worker_series():
    with fleet() as db:
        load_users(db)
        db.execute("SELECT COUNT(*) FROM users")
        folded = db.federate_metrics()
        assert folded > 0
        snap = db.obs.snapshot()
        for shard in ("0", "1"):
            key = f'memory.verified_reads{{shard="{shard}"}}'
            assert snap[key]["value"] > 0
        # second pull folds only the delta — no traffic, no counters
        first = snap['memory.verified_reads{shard="0"}']["value"]
        db.federate_metrics()
        assert (
            db.obs.snapshot()['memory.verified_reads{shard="0"}']["value"]
            == first
        )


def test_worker_metrics_off_federates_nothing():
    with fleet(worker_metrics=False, federate_metrics=False) as db:
        load_users(db, rows=10)
        db.execute("SELECT COUNT(*) FROM users")
        assert db.federate_metrics() == 0


def test_fleet_exposition_lints_clean():
    with fleet() as db:
        load_users(db)
        db.execute("SELECT city, COUNT(*) FROM users GROUP BY city")
        db.health()  # federates + health gauges
        text = render_prometheus(db.obs)
        assert lint_prometheus(text) == []
        assert 'veridb_shard_request_seconds_bucket{shard="0"' in text
        assert "veridb_health_worker_up" in text


# ----------------------------------------------------------------------
# health / alerts
# ----------------------------------------------------------------------
def test_health_clean_fleet_has_no_alerts():
    with fleet() as db:
        load_users(db, rows=10)
        report = db.health()
        assert report["healthy"]
        assert report["alerts"] == []
        assert set(report["shards"]) == {0, 1}
        assert all(s["up"] for s in report["shards"].values())
        assert report["slo"]["p99_target"] == 1.0


def test_killed_worker_raises_alert_and_restart_clears_it():
    with scoped_event_sink(JsonlEventSink()) as sink:
        with fleet(transport="process", request_timeout=5.0) as db:
            load_users(db, rows=10)
            assert db.health()["healthy"]
            # murder shard 1's process outright (no clean close)
            db.links[1]._process.terminate()
            db.links[1]._process.join(timeout=10.0)
            report = db.health()
            assert not report["healthy"]
            assert [(a["alert"], a["shard"]) for a in report["alerts"]] == [
                ("worker_down", 1)
            ]
            assert not report["shards"][1]["up"]
            db.restart_worker(1)
            recovered = db.health()
            assert recovered["healthy"]
            assert recovered["alerts"] == []
            # the restarted worker answers authenticated requests again
            assert db.router.call(1, "table_names", {}) == []
        events = [
            (e["type"], e["shard"])
            for e in sink.events
            if e["type"].startswith("alert")
        ]
        assert events == [("alert_raised", 1), ("alert_cleared", 1)]


def test_epoch_lag_alert_tracks_fleet_round():
    with fleet() as db:
        load_users(db, rows=10)
        db.verify_now()
        assert db.health()["healthy"]
        # a worker that missed the last close lags the coordinator
        db._fleet_round += 1
        report = db.health()
        alerts = {(a["alert"], a["shard"]) for a in report["alerts"]}
        assert ("epoch_lag", 0) in alerts and ("epoch_lag", 1) in alerts
        db._fleet_round -= 1
        assert db.health()["healthy"]


def test_background_poller_runs_and_stops():
    import time

    with scoped_event_sink(JsonlEventSink()):
        with fleet(health_interval=0.05) as db:
            load_users(db, rows=10)
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                if counter_value(db.obs.snapshot(), "health.polls") >= 2:
                    break
                time.sleep(0.02)
            assert counter_value(db.obs.snapshot(), "health.polls") >= 2
        # close() stopped the poller
        assert db.monitor._thread is None


# ----------------------------------------------------------------------
# service surface
# ----------------------------------------------------------------------
def test_query_service_health_includes_fleet():
    from repro.service import QueryService

    with fleet() as db:
        load_users(db, rows=10)
        service = QueryService(db)
        try:
            report = service.health()
            assert report["healthy"]
            assert report["fleet"]["healthy"]
            assert set(report["fleet"]["shards"]) == {0, 1}
        finally:
            service.close()


def test_query_service_health_single_instance_backend():
    from repro.core.database import VeriDB
    from repro.service import QueryService

    service = QueryService(VeriDB(VeriDBConfig(key_seed=5)))
    try:
        report = service.health()
        assert report["healthy"]
        assert "fleet" not in report
    finally:
        service.close()
