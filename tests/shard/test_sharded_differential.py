"""Differential fuzzing: sharded fleet vs single enclave vs SQLite.

One seeded ``random.Random`` drives data and query generation; every
query runs against the sharded fleet (at shard counts 1/2/4, pruning on
and off), a single-enclave VeriDB, and SQLite. The corpus is
INTEGER-only — float SUM is not associative, and partial-aggregate
merge reorders additions across shards, so integer columns are what
makes "byte-identical" a meaningful claim.

Comparisons: queries under a unique total ORDER BY must match the
single enclave *exactly* (order and all); everything else compares as
canonically sorted multisets. Every query also runs twice on the fleet
— the second execution rides the plan/statement caches and must not
change the answer. Each sweep ends with a fleet-wide epoch close.
"""

import random
import sqlite3

import pytest

from repro.core.config import ShardConfig, VeriDBConfig
from repro.core.database import VeriDB
from repro.obs.metrics import MetricsRegistry
from repro.shard import ShardedDatabase

SHARD_COUNTS = (1, 2, 4)

_DDL = (
    "CREATE TABLE t (id INTEGER PRIMARY KEY, a INTEGER NOT NULL, "
    "b INTEGER{chain})"
)


def _canon(rows):
    def key(row):
        return tuple((value is None, value) for value in row)

    return sorted(rows, key=key)


class ShardFuzzer:
    """Random queries in the dialect all three engines accept."""

    def __init__(self, rng: random.Random):
        self.rng = rng

    def literal(self):
        return self.rng.randrange(-5, 51)

    def predicate(self, depth=2):
        roll = self.rng.random()
        if depth > 0 and roll < 0.25:
            connective = self.rng.choice(["AND", "OR"])
            return (
                f"({self.predicate(depth - 1)} {connective} "
                f"{self.predicate(depth - 1)})"
            )
        col = self.rng.choice(["id", "a", "b"])
        if roll < 0.4:
            negated = "NOT " if self.rng.random() < 0.5 else ""
            return f"({col} IS {negated}NULL)"
        if roll < 0.55:
            items = ", ".join(
                str(self.literal()) for _ in range(self.rng.randrange(1, 5))
            )
            return f"({col} IN ({items}))"
        if roll < 0.7:
            lo = self.rng.randrange(0, 25)
            return f"({col} BETWEEN {lo} AND {lo + self.rng.randrange(0, 25)})"
        op = self.rng.choice(["=", "!=", "<", "<=", ">", ">="])
        return f"({col} {op} {self.literal()})"

    def next_query(self):
        """Returns ``(sql, params, exact_order)``."""
        roll = self.rng.random()
        if roll < 0.2:
            # shard-key point query with a bound parameter: the pruning
            # path, re-resolved per execution
            return (
                "SELECT id, a, b FROM t WHERE id = ?",
                (self.rng.randrange(0, 40),),
                True,
            )
        if roll < 0.4:
            # grouped partial aggregates (the merge path)
            return (
                "SELECT a, COUNT(*), COUNT(b), SUM(b), MIN(b), MAX(b), "
                f"AVG(a) FROM t WHERE {self.predicate()} GROUP BY a",
                (),
                False,
            )
        if roll < 0.5:
            # global aggregate, possibly over zero rows on some shards
            return (
                "SELECT COUNT(*), SUM(a), MIN(a), MAX(b) FROM t "
                f"WHERE {self.predicate()}",
                (),
                False,
            )
        if roll < 0.65:
            direction = self.rng.choice(["ASC", "DESC"])
            limit = self.rng.randrange(0, 12)
            return (
                f"SELECT id, a FROM t WHERE {self.predicate()} "
                f"ORDER BY id {direction} LIMIT {limit}",
                (),
                True,  # id is unique: a total order, compare exactly
            )
        if roll < 0.75:
            return (
                f"SELECT DISTINCT a, b FROM t WHERE {self.predicate()}",
                (),
                False,
            )
        return (
            f"SELECT id, a, b FROM t WHERE {self.predicate()}",
            (),
            False,
        )


def _setup(rng, shard_count, prune):
    sharded = ShardedDatabase(
        ShardConfig(
            shard_count=shard_count,
            prune=prune,
            base=VeriDBConfig(key_seed=31),
        ),
        registry=MetricsRegistry(),
    )
    single = VeriDB(VeriDBConfig(key_seed=31))
    connection = sqlite3.connect(":memory:")
    for db in (sharded, single):
        db.sql(_DDL.format(chain=", CHAIN (a)"))
    connection.execute(_DDL.format(chain=""))
    for i in range(rng.randrange(10, 40)):
        row = (
            i,
            rng.randrange(0, 8),
            None if rng.random() < 0.3 else rng.randrange(-5, 6),
        )
        sharded.table("t").insert(row)
        single.table("t").insert(row)
        connection.execute("INSERT INTO t VALUES (?, ?, ?)", row)
    return sharded, single, connection


def _sweep(seed, shard_count, prune, queries=25, reseed_every=13):
    rng = random.Random(seed)
    fuzzer = ShardFuzzer(rng)
    sharded = single = connection = None
    try:
        for index in range(queries):
            if index % reseed_every == 0:
                if sharded is not None:
                    sharded.verify_now()
                    sharded.close()
                sharded, single, connection = _setup(rng, shard_count, prune)
            sql, params, exact = fuzzer.next_query()
            tag = (
                f"seed={seed} index={index} shards={shard_count} "
                f"prune={prune} sql={sql!r} params={params!r}"
            )
            fleet_rows = sharded.execute(sql, params=params or None).rows
            cached = sharded.execute(sql, params=params or None).rows
            single_rows = single.sql(sql, params=params or None).rows
            sqlite_rows = [
                tuple(r) for r in connection.execute(sql, params).fetchall()
            ]
            if exact:
                # unique total order: the fleet answer must be
                # byte-identical to the single enclave's
                assert list(fleet_rows) == list(single_rows), tag
                assert list(cached) == list(single_rows), tag
                assert list(single_rows) == sqlite_rows, tag
            else:
                assert len(fleet_rows) == len(sqlite_rows), tag
                assert _canon(fleet_rows) == _canon(single_rows), tag
                assert _canon(cached) == _canon(single_rows), tag
                assert _canon(single_rows) == _canon(sqlite_rows), tag
        sharded.verify_now()
        single.verify_now()
    finally:
        if sharded is not None:
            sharded.close()


@pytest.mark.parametrize("shard_count", SHARD_COUNTS)
def test_fleet_matches_single_enclave_and_sqlite(shard_count):
    _sweep(seed=17 + shard_count, shard_count=shard_count, prune=True)


@pytest.mark.parametrize("shard_count", SHARD_COUNTS)
def test_pruning_off_is_invisible(shard_count):
    """Pruning is a pure optimization: forced off, same corpus, same
    answers (the seed matches the pruned run above query for query)."""
    _sweep(seed=17 + shard_count, shard_count=shard_count, prune=False)


@pytest.mark.slow
@pytest.mark.parametrize("shard_count", SHARD_COUNTS)
@pytest.mark.parametrize("prune", [True, False])
def test_fleet_deep_corpus(shard_count, prune):
    for seed in range(4):
        _sweep(seed, shard_count, prune, queries=80)
