"""Unit tests for the trusted monotonic counter."""

import threading

from repro.sgx.counter import MonotonicCounter


def test_increment_strictly_increasing():
    counter = MonotonicCounter()
    values = [counter.increment() for _ in range(100)]
    assert values == sorted(values)
    assert len(set(values)) == 100


def test_read_does_not_advance():
    counter = MonotonicCounter(start=5)
    assert counter.read() == 5
    assert counter.read() == 5


def test_concurrent_increments_unique():
    counter = MonotonicCounter()
    seen: list[int] = []
    lock = threading.Lock()

    def worker():
        for _ in range(500):
            value = counter.increment()
            with lock:
                seen.append(value)

    threads = [threading.Thread(target=worker) for _ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert len(seen) == len(set(seen)) == 2000


def test_power_loss_causes_repetition():
    """The premise of the rollback defence: losing state repeats numbers."""
    counter = MonotonicCounter()
    first_run = [counter.increment() for _ in range(3)]
    counter._simulate_power_loss()
    second_run = [counter.increment() for _ in range(3)]
    assert set(first_run) & set(second_run)
