"""Unit tests for remote attestation."""

import pytest

from repro.crypto.keys import generate_key
from repro.errors import AttestationError
from repro.sgx.attestation import PlatformQuotingKey, measure, verify_quote
from repro.sgx.enclave import Enclave


@pytest.fixture
def platform():
    return PlatformQuotingKey(generate_key(seed=11))


def test_measure_order_sensitive():
    assert measure([b"a", b"b"]) != measure([b"b", b"a"])


def test_measure_framing():
    assert measure([b"ab", b"c"]) != measure([b"a", b"bc"])


def test_quote_roundtrip(platform):
    enclave = Enclave(platform=platform)
    enclave.load_code(b"veridb-engine-v1")
    challenge = b"nonce-123"
    report = enclave.attest(challenge)
    verify_quote(platform, report, enclave.measurement, challenge)


def test_wrong_measurement_rejected(platform):
    enclave = Enclave(platform=platform)
    enclave.load_code(b"veridb-engine-v1")
    report = enclave.attest(b"nonce")
    with pytest.raises(AttestationError):
        verify_quote(platform, report, measure([b"evil-engine"]), b"nonce")


def test_replayed_challenge_rejected(platform):
    enclave = Enclave(platform=platform)
    report = enclave.attest(b"nonce-old")
    with pytest.raises(AttestationError):
        verify_quote(platform, report, enclave.measurement, b"nonce-new")


def test_forged_quote_rejected(platform):
    enclave = Enclave(platform=platform)
    report = enclave.attest(b"nonce")
    forged = type(report)(
        measurement=report.measurement,
        challenge=report.challenge,
        report_data=report.report_data,
        quote=bytes(32),
    )
    with pytest.raises(AttestationError):
        verify_quote(platform, forged, enclave.measurement, b"nonce")


def test_quote_from_other_platform_rejected(platform):
    other = PlatformQuotingKey(generate_key(seed=12))
    enclave = Enclave(platform=other)
    report = enclave.attest(b"nonce")
    with pytest.raises(AttestationError):
        verify_quote(platform, report, enclave.measurement, b"nonce")
