"""Unit tests for the simulated enclave trust boundary."""

import pytest

from repro.errors import EnclaveError, IntegrityError
from repro.sgx.enclave import Enclave


@pytest.fixture
def enclave():
    return Enclave(name="test")


def test_ecall_dispatch(enclave):
    enclave.register_ecall("add", lambda a, b: a + b)
    assert enclave.ecall("add", 2, 3) == 5


def test_unknown_ecall_rejected(enclave):
    with pytest.raises(EnclaveError):
        enclave.ecall("missing")


def test_duplicate_ecall_rejected(enclave):
    enclave.register_ecall("f", lambda: None)
    with pytest.raises(EnclaveError):
        enclave.register_ecall("f", lambda: None)


def test_ecall_charges_cycles(enclave):
    enclave.register_ecall("noop", lambda: None)
    before = enclave.meter.snapshot()
    enclave.ecall("noop")
    after = enclave.meter.snapshot()
    assert after["ecalls"] == before["ecalls"] + 1
    assert after["cycles"] - before["cycles"] == enclave.meter.model.ecall_cycles


def test_ocall_charges_cycles(enclave):
    before = enclave.meter.snapshot()
    assert enclave.ocall(len, b"abc") == 3
    assert enclave.meter.snapshot()["ocalls"] == before["ocalls"] + 1


def test_measurement_changes_with_code(enclave):
    m0 = enclave.measurement
    enclave.load_code(b"module-a")
    m1 = enclave.measurement
    assert m0 != m1
    enclave.load_code(b"module-b")
    assert enclave.measurement != m1


def test_registering_ecall_extends_measurement(enclave):
    m0 = enclave.measurement
    enclave.register_ecall("g", lambda: None)
    assert enclave.measurement != m0


def test_seal_unseal_roundtrip(enclave):
    blob = enclave.seal(b"secret state")
    assert enclave.unseal(blob) == b"secret state"


def test_seal_hides_plaintext(enclave):
    blob = enclave.seal(b"secret state")
    assert b"secret state" not in blob


def test_unseal_detects_tampering(enclave):
    blob = bytearray(enclave.seal(b"secret"))
    blob[-1] ^= 0xFF
    with pytest.raises(IntegrityError):
        enclave.unseal(bytes(blob))


def test_unseal_rejects_truncated(enclave):
    with pytest.raises(IntegrityError):
        enclave.unseal(b"short")


def test_unseal_requires_same_keychain():
    blob = Enclave(name="a").seal(b"x")
    with pytest.raises(IntegrityError):
        Enclave(name="b").unseal(blob)


def test_attest_requires_platform(enclave):
    with pytest.raises(EnclaveError):
        enclave.attest(b"challenge")
