"""Unit tests for EPC capacity accounting and paging."""

import pytest

from repro.errors import EnclaveError
from repro.sgx.costs import CycleMeter
from repro.sgx.epc import EnclavePageCache


def make_epc(capacity=10_000):
    meter = CycleMeter()
    return EnclavePageCache(capacity_bytes=capacity, meter=meter), meter


def test_allocate_and_usage():
    epc, _ = make_epc()
    epc.allocate("rsws", 1024)
    assert epc.resident_bytes == 1024
    assert epc.usage()["allocations"] == 1


def test_duplicate_allocation_rejected():
    epc, _ = make_epc()
    epc.allocate("x", 10)
    with pytest.raises(EnclaveError):
        epc.allocate("x", 10)


def test_negative_size_rejected():
    epc, _ = make_epc()
    with pytest.raises(EnclaveError):
        epc.allocate("x", -1)


def test_free():
    epc, _ = make_epc()
    epc.allocate("x", 10)
    epc.free("x")
    assert epc.resident_bytes == 0
    with pytest.raises(EnclaveError):
        epc.free("x")


def test_overflow_swaps_lru():
    epc, meter = make_epc(capacity=10_000)
    epc.allocate("old", 6_000)
    epc.allocate("new", 6_000)
    assert epc.swapped_bytes == 6_000
    assert epc.resident_bytes == 6_000
    assert meter.epc_swaps > 0


def test_touch_swaps_back_in():
    epc, meter = make_epc(capacity=10_000)
    epc.allocate("old", 6_000)
    epc.allocate("new", 6_000)
    swaps_before = meter.epc_swaps
    epc.touch("old")  # paging old back evicts new
    assert meter.epc_swaps > swaps_before
    assert epc.total_bytes == 12_000


def test_touch_unknown_rejected():
    epc, _ = make_epc()
    with pytest.raises(EnclaveError):
        epc.touch("nope")


def test_resize_touches_and_accounts():
    epc, _ = make_epc()
    epc.allocate("x", 100)
    epc.resize("x", 500)
    assert epc.resident_bytes == 500


def test_small_footprint_never_swaps():
    """VeriDB's synopsis stays inside the EPC: no swaps should be charged."""
    epc, meter = make_epc(capacity=96 * 1024 * 1024)
    epc.allocate("rsws-digests", 1024 * 64)
    epc.allocate("touched-bitmap", 512 * 1024)  # Section 4.3's 0.5 MB
    epc.allocate("query-state", 1024 * 1024)
    assert meter.epc_swaps == 0


def test_zero_capacity_rejected():
    with pytest.raises(EnclaveError):
        EnclavePageCache(capacity_bytes=0)
