"""Unit tests for the cycle-cost model."""

from repro.sgx.costs import CostModel, CostReport, CycleMeter


def test_defaults_match_paper():
    model = CostModel()
    assert model.ecall_cycles == 8000
    assert model.epc_swap_cycles == 40000


def test_charges_accumulate():
    meter = CycleMeter()
    meter.charge_ecall()
    meter.charge_ocall()
    meter.charge_epc_swaps(2)
    snap = meter.snapshot()
    assert snap["ecalls"] == 1
    assert snap["ocalls"] == 1
    assert snap["epc_swaps"] == 2
    assert snap["cycles"] == 8000 + 8000 + 2 * 40000


def test_zero_swaps_is_noop():
    meter = CycleMeter()
    meter.charge_epc_swaps(0)
    assert meter.snapshot()["cycles"] == 0


def test_reset():
    meter = CycleMeter()
    meter.charge_ecall()
    meter.reset()
    assert meter.snapshot()["cycles"] == 0


def test_report_between_snapshots():
    meter = CycleMeter()
    before = meter.snapshot()
    meter.charge_ecall()
    meter.charge_ecall()
    report = CostReport.between(before, meter.snapshot())
    assert report.ecalls == 2
    assert report.cycles == 16000
