"""Smoke tests: every shipped example runs to completion.

Examples are documentation that executes; these tests keep them honest
as the library evolves. Each runs in a subprocess with a generous
timeout and must exit 0.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"

EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def test_examples_discovered():
    assert len(EXAMPLES) >= 5


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script):
    if script == "sql_shell.py":
        stdin = "SELECT 1 + 1 FROM nothing\n.quit\n"  # error path + exit
        # a statement against a missing table must not crash the shell
    else:
        stdin = ""
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        input=stdin,
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert completed.returncode == 0, (
        f"{script} failed\nstdout:\n{completed.stdout[-2000:]}\n"
        f"stderr:\n{completed.stderr[-2000:]}"
    )


def test_shell_handles_sql_and_commands():
    stdin = (
        "CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)\n"
        "INSERT INTO t VALUES (1, 10)\n"
        "SELECT * FROM t\n"
        ".tables\n"
        ".explain SELECT * FROM t WHERE id = 1\n"
        ".verify\n"
        ".stats\n"
        ".audit\n"
        "THIS IS NOT SQL\n"
        ".nonsense\n"
        ".quit\n"
    )
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "sql_shell.py")],
        input=stdin,
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert "1 | 10" in completed.stdout
    assert "IndexSearch" in completed.stdout
    assert "epoch closed" in completed.stdout
    assert "error:" in completed.stdout  # bad SQL reported, not fatal
