"""Golden-path integration: the whole system working together.

One test class = one scenario exercising multiple subsystems end to
end: attested clients, SQL with joins/subqueries/transactions, spilling,
continuous verification, recovery, and forensics after an attack.
"""

import pytest

from repro import (
    StorageConfig,
    VeriDB,
    VeriDBConfig,
    VerificationFailure,
)
from repro.core.incident import investigate
from repro.core.recovery import (
    load_snapshot,
    recover_database,
    save_snapshot,
    snapshot_database,
)
from repro.memory.adversary import Adversary
from repro.memory.cells import make_addr


@pytest.fixture
def db():
    config = VeriDBConfig(
        storage=StorageConfig(spill_threshold_rows=32),
        ops_per_page_scan=200,
        key_seed=99,
    )
    database = VeriDB(config)
    client = database.connect(name="ops")
    client.execute(
        "CREATE TABLE customers (id INTEGER PRIMARY KEY, region TEXT, "
        "tier INTEGER NOT NULL, CHAIN (tier))"
    )
    client.execute(
        "CREATE TABLE orders (id INTEGER PRIMARY KEY, cust INTEGER, "
        "amount INTEGER, placed DATE, CHAIN (placed))"
    )
    for i in range(40):
        client.execute(
            f"INSERT INTO customers VALUES ({i}, 'r{i % 4}', {i % 3})"
        )
    for i in range(200):
        day = 1 + i % 28
        client.execute(
            f"INSERT INTO orders VALUES ({i}, {i % 40}, {(i * 37) % 500}, "
            f"DATE '2021-03-{day:02d}')"
        )
    return database, client


def test_analytics_through_attested_client(db):
    database, client = db
    result = client.execute(
        "SELECT c.region, COUNT(*) AS n, SUM(o.amount) AS total "
        "FROM orders o JOIN customers c ON o.cust = c.id "
        "WHERE o.placed BETWEEN DATE '2021-03-05' AND DATE '2021-03-20' "
        "AND c.tier IN (SELECT tier FROM customers WHERE id < 10) "
        "GROUP BY c.region ORDER BY total DESC"
    )
    assert result.rowcount == 4
    totals = [row[2] for row in result.rows]
    assert totals == sorted(totals, reverse=True)
    database.verify_now()


def test_spilled_sort_through_client(db):
    database, client = db
    result = client.execute("SELECT amount FROM orders ORDER BY amount")
    values = [r[0] for r in result.rows]
    assert values == sorted(values)
    assert database.engine.spill.stats.sort_runs > 1  # it really spilled
    database.verify_now()


def test_transactional_maintenance_then_recovery(db, tmp_path):
    database, client = db
    session = database.session(name="maintenance")
    session.execute("BEGIN")
    session.execute("UPDATE orders SET amount = amount + 1 WHERE id < 100")
    session.execute("DELETE FROM orders WHERE id >= 190")
    session.execute("COMMIT")
    before = database.sql("SELECT COUNT(*), SUM(amount) FROM orders").rows

    path = tmp_path / "replica"
    save_snapshot(snapshot_database(database), path)
    recovered = recover_database(load_snapshot(path), VeriDBConfig(key_seed=100))
    assert recovered.sql("SELECT COUNT(*), SUM(amount) FROM orders").rows == before
    # verified range access works on the recovered chains
    assert recovered.sql(
        "SELECT COUNT(*) FROM orders WHERE placed >= DATE '2021-03-27'"
    ).rows == database.sql(
        "SELECT COUNT(*) FROM orders WHERE placed >= DATE '2021-03-27'"
    ).rows


def test_attack_detect_investigate(db):
    database, client = db
    table = database.table("orders")
    rid = table.indexes[0].search(17)
    page = table.heap.get_page(rid.page_id)
    offset, _ = page.slot_offset_for_compaction(rid.slot)
    addr = make_addr(rid.page_id, offset)
    Adversary(database.storage.memory).corrupt(addr, b"\x99" * 24)
    with pytest.raises(VerificationFailure) as excinfo:
        database.verify_now()
    report = investigate(database, excinfo.value)
    assert report.localized
    assert any(a.table == "orders" for a in report.anomalies)


def test_continuous_verification_ran(db):
    database, client = db
    # the op-count trigger was active during the whole fixture load
    assert database.storage.verifier.stats.pages_scanned > 0
    # audit state persists across a client handover
    blob = client.export_audit_state()
    successor = database.connect(name="successor", audit_state=blob)
    successor.execute("SELECT COUNT(*) FROM customers")
    assert successor.queries_verified > client.queries_verified