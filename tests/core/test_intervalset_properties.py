"""Property-based tests for the client's interval-compressed audit log."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.client import IntervalSet


@given(st.lists(st.integers(0, 500), max_size=200))
def test_matches_set_semantics(values):
    """add() returns exactly what set.add would; membership agrees."""
    interval_set = IntervalSet()
    model: set[int] = set()
    for value in values:
        added = interval_set.add(value)
        assert added == (value not in model)
        model.add(value)
    assert len(interval_set) == len(model)
    for probe in range(-1, 502, 7):
        assert (probe in interval_set) == (probe in model)


@given(st.lists(st.integers(0, 500), max_size=200))
def test_intervals_are_canonical(values):
    """Intervals stay sorted, disjoint and non-adjacent (fully merged)."""
    interval_set = IntervalSet()
    for value in values:
        interval_set.add(value)
    intervals = interval_set.intervals()
    for lo, hi in intervals:
        assert lo <= hi
    for (_lo_a, hi_a), (lo_b, _hi_b) in zip(intervals, intervals[1:]):
        assert lo_b > hi_a + 1  # a gap of at least one (else: merged)


@given(st.permutations(list(range(60))))
def test_any_permutation_of_a_range_compacts_to_one_interval(order):
    interval_set = IntervalSet()
    for value in order:
        assert interval_set.add(value)
    assert interval_set.interval_count == 1
    assert interval_set.intervals() == [(0, 59)]


# ----------------------------------------------------------------------
# persistence round-trips: the audit log must survive client restarts
# byte-exactly, and refuse to load anything non-canonical (a corrupted
# or attacker-supplied blob must never widen the accepted-qid set)
# ----------------------------------------------------------------------
@given(st.lists(st.integers(0, 2**40), max_size=150))
def test_serialization_round_trips(values):
    original = IntervalSet()
    for value in values:
        original.add(value)
    restored = IntervalSet.from_bytes(original.to_bytes())
    assert restored.intervals() == original.intervals()
    assert len(restored) == len(original)
    # the round-trip is a fixed point: re-encoding is byte-identical
    assert restored.to_bytes() == original.to_bytes()


@given(st.lists(st.integers(0, 400), max_size=120), st.integers(0, 400))
def test_restored_set_keeps_answering_correctly(values, probe):
    """Membership and further adds behave identically after a reload."""
    original = IntervalSet()
    model: set[int] = set()
    for value in values:
        original.add(value)
        model.add(value)
    restored = IntervalSet.from_bytes(original.to_bytes())
    assert (probe in restored) == (probe in model)
    assert restored.add(probe) == (probe not in model)


@given(st.binary(max_size=64))
def test_random_blobs_never_load_silently_wrong(blob):
    """Arbitrary bytes either raise ValueError or decode canonically."""
    try:
        restored = IntervalSet.from_bytes(blob)
    except ValueError:
        return
    # anything accepted must be canonical: re-encoding reproduces it
    assert restored.to_bytes() == blob
    intervals = restored.intervals()
    for lo, hi in intervals:
        assert lo <= hi
    for (_lo_a, hi_a), (lo_b, _hi_b) in zip(intervals, intervals[1:]):
        assert lo_b > hi_a + 1


@pytest.mark.parametrize(
    "corrupt",
    [
        lambda b: b[:-1],  # truncated
        lambda b: b + b"\x00",  # trailing junk
        lambda b: b"\xff\xff\xff\xff" + b[4:],  # absurd count
    ],
    ids=["truncated", "trailing-junk", "bad-count"],
)
def test_tampered_blob_rejected(corrupt):
    original = IntervalSet()
    for value in (1, 2, 3, 10, 11, 40):
        original.add(value)
    with pytest.raises(ValueError):
        IntervalSet.from_bytes(corrupt(original.to_bytes()))


@given(st.sets(st.integers(0, 300), max_size=80))
def test_interval_count_equals_maximal_runs(values):
    interval_set = IntervalSet()
    for value in values:
        interval_set.add(value)
    # count maximal consecutive runs in the model
    runs = 0
    ordered = sorted(values)
    for i, value in enumerate(ordered):
        if i == 0 or value > ordered[i - 1] + 1:
            runs += 1
    assert interval_set.interval_count == runs
