"""Property-based tests for the client's interval-compressed audit log."""

from hypothesis import given
from hypothesis import strategies as st

from repro.core.client import IntervalSet


@given(st.lists(st.integers(0, 500), max_size=200))
def test_matches_set_semantics(values):
    """add() returns exactly what set.add would; membership agrees."""
    interval_set = IntervalSet()
    model: set[int] = set()
    for value in values:
        added = interval_set.add(value)
        assert added == (value not in model)
        model.add(value)
    assert len(interval_set) == len(model)
    for probe in range(-1, 502, 7):
        assert (probe in interval_set) == (probe in model)


@given(st.lists(st.integers(0, 500), max_size=200))
def test_intervals_are_canonical(values):
    """Intervals stay sorted, disjoint and non-adjacent (fully merged)."""
    interval_set = IntervalSet()
    for value in values:
        interval_set.add(value)
    intervals = interval_set.intervals()
    for lo, hi in intervals:
        assert lo <= hi
    for (_lo_a, hi_a), (lo_b, _hi_b) in zip(intervals, intervals[1:]):
        assert lo_b > hi_a + 1  # a gap of at least one (else: merged)


@given(st.permutations(list(range(60))))
def test_any_permutation_of_a_range_compacts_to_one_interval(order):
    interval_set = IntervalSet()
    for value in order:
        assert interval_set.add(value)
    assert interval_set.interval_count == 1
    assert interval_set.intervals() == [(0, 59)]


@given(st.sets(st.integers(0, 300), max_size=80))
def test_interval_count_equals_maximal_runs(values):
    interval_set = IntervalSet()
    for value in values:
        interval_set.add(value)
    # count maximal consecutive runs in the model
    runs = 0
    ordered = sorted(values)
    for i, value in enumerate(ordered):
        if i == 0 or value > ordered[i - 1] + 1:
            runs += 1
    assert interval_set.interval_count == runs
