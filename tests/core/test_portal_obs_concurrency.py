"""Concurrency: portal submissions race the background verifier.

Multiple client threads hammer :meth:`QueryPortal.submit` — including
deliberate replays — while background verification passes run. At the
end, the observability counters must reconcile exactly with what the
threads observed, and the verifier must have died of nothing.
"""

import threading

import pytest

from repro.core.client import VeriDBClient
from repro.core.config import VeriDBConfig
from repro.core.database import VeriDB
from repro.core.portal import AuthenticatedQuery
from repro.crypto.mac import MessageAuthenticator
from repro.errors import AuthenticationError
from repro.obs import MetricsRegistry, scoped_registry
from repro.storage.config import StorageConfig

N_THREADS = 4
QUERIES_PER_THREAD = 40
REPLAY_EVERY = 10


@pytest.fixture
def observed_db():
    with scoped_registry(MetricsRegistry()) as registry:
        db = VeriDB(
            VeriDBConfig(
                key_seed=11,
                storage=StorageConfig(rsws_partitions=8),
            )
        )
        db.sql("CREATE TABLE kv (id INTEGER PRIMARY KEY, v INTEGER)")
        db.sql("INSERT INTO kv VALUES (1, 100)")
        yield db, registry


def test_submissions_race_background_verifier(observed_db):
    db, registry = observed_db
    db.start_background_verification(pause_seconds=0.001)
    successes = [0] * N_THREADS
    replays = [0] * N_THREADS
    errors: list[BaseException] = []
    barrier = threading.Barrier(N_THREADS)

    mac = MessageAuthenticator(db.enclave.keychain.mac_key)
    sql = "SELECT v FROM kv WHERE id = 1"

    def worker(index: int) -> None:
        try:
            client: VeriDBClient = db.connect(name=f"client-{index}")
            barrier.wait(5)
            for i in range(QUERIES_PER_THREAD):
                result = client.execute(sql)
                assert result.rows == ((100,),)
                successes[index] += 1
                if (i + 1) % REPLAY_EVERY == 0:
                    # rebuild the query the client just sent (qid = salt
                    # + counter i) and replay it straight at the portal
                    qid = client._qid_salt + i.to_bytes(8, "little")
                    replay = AuthenticatedQuery(
                        qid=qid, sql=sql, mac=mac.tag(qid, sql.encode())
                    )
                    try:
                        db.portal.submit(replay)
                    except AuthenticationError:
                        replays[index] += 1
        except BaseException as exc:  # surfaced to the main thread
            errors.append(exc)

    threads = [
        threading.Thread(target=worker, args=(i,)) for i in range(N_THREADS)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(60)
    # the background loop must still be alive — nothing killed it quietly
    assert db.storage.verifier.background_alive()
    db.stop_background_verification()  # re-raises any swallowed error
    assert errors == []

    total_success = sum(successes)
    total_replays = sum(replays)
    assert total_success == N_THREADS * QUERIES_PER_THREAD
    assert total_replays == N_THREADS * (QUERIES_PER_THREAD // REPLAY_EVERY)

    snap = registry.snapshot()
    # the setup fixture issues its SQL through the admin path (no qid),
    # so portal counters reconcile exactly with the client threads
    assert snap["portal.queries"]["value"] == total_success
    assert snap["portal.replays_rejected"]["value"] == total_replays
    assert snap["portal.auth_failures"]["value"] == 0
    assert snap["portal.execute_errors"]["value"] == 0
    assert db.portal.seen_query_count() == total_success
    # bounded replay state: one interval per client salt
    assert snap["portal.qid_salts"]["value"] == N_THREADS
    assert snap["portal.qid_ledger_size"]["value"] == N_THREADS
    # every successful query is one enclave crossing; replays go through
    # the portal directly in this test and cost no ECall
    assert snap["sgx.ecalls"]["value"] == total_success
    # the verifier made progress concurrently and died of nothing
    assert snap["verifier.passes"]["value"] >= 1
    assert snap["verifier.background_crashes"]["value"] == 0
    assert snap["verifier.alarms"]["value"] == 0
    # latency histograms saw every query
    assert snap["portal.execute_seconds"]["count"] == total_success
    assert snap["sql.statements"]["value"] >= total_success
