"""Recovery from power failure (Section 5.1)."""

import pytest

from repro.core.config import VeriDBConfig
from repro.core.database import VeriDB
from repro.core.recovery import recover_database, snapshot_database


@pytest.fixture
def db():
    database = VeriDB(VeriDBConfig(key_seed=6))
    database.sql(
        "CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER, CHAIN (v))"
    )
    for i in range(25):
        database.sql(f"INSERT INTO t VALUES ({i}, {i * 3})")
    database.sql("DELETE FROM t WHERE id = 7")
    return database


def test_snapshot_contains_all_rows(db):
    snap = snapshot_database(db)
    assert len(snap.tables) == 1
    name, schema, rows = snap.tables[0]
    assert name == "t"
    assert len(rows) == 24


def test_recovered_instance_answers_identically(db):
    snap = snapshot_database(db)
    recovered = recover_database(snap, VeriDBConfig(key_seed=7))
    for sql in (
        "SELECT COUNT(*) FROM t",
        "SELECT SUM(v) FROM t",
        "SELECT * FROM t WHERE v BETWEEN 10 AND 40",
    ):
        assert recovered.sql(sql).rows == db.sql(sql).rows


def test_recovery_rebuilds_verification_state(db):
    """The replayed writes repopulate h(WS); verification succeeds and
    then protects the recovered data like any other."""
    recovered = recover_database(snapshot_database(db), VeriDBConfig(key_seed=8))
    recovered.verify_now()
    recovered.sql("INSERT INTO t VALUES (100, 300)")
    recovered.verify_now()


def test_recovered_instance_detects_new_tampering(db):
    from repro.errors import VerificationFailure
    from repro.memory.adversary import Adversary
    from repro.memory.cells import make_addr

    recovered = recover_database(snapshot_database(db), VeriDBConfig(key_seed=9))
    table = recovered.table("t")
    rid = table.indexes[0].search(3)
    page = table.heap.get_page(rid.page_id)
    offset, _ = page.slot_offset_for_compaction(rid.slot)
    addr = make_addr(rid.page_id, offset)
    cell = recovered.storage.memory.raw_read(addr)
    Adversary(recovered.storage.memory).corrupt(addr, cell.data[:-1] + b"?")
    with pytest.raises(VerificationFailure):
        recovered.verify_now()


def test_recovery_serves_new_clients(db):
    recovered = recover_database(snapshot_database(db), VeriDBConfig(key_seed=10))
    client = recovered.connect()
    assert client.execute("SELECT COUNT(*) FROM t").rows == ((24,),)


# ----------------------------------------------------------------------
# the snapshot path shares the WAL replay applier (regressions)
# ----------------------------------------------------------------------
def test_snapshot_replay_goes_through_the_shared_applier(db):
    """Snapshot recovery is the same op stream as WAL replay — proven by
    the replay fault site firing on it."""
    from repro.errors import TransientFault
    from repro.faults import ChaosPlane, ChaosSchedule, scoped_fault_plane, sites

    snap = snapshot_database(db)
    plane = ChaosPlane(
        ChaosSchedule(
            seed=3, rates={sites.WAL_REPLAY_ABORT: 1.0}, limit_per_site=1
        )
    )
    with scoped_fault_plane(plane):
        with pytest.raises(TransientFault):
            recover_database(snap, VeriDBConfig(key_seed=11))
        # replay mutates nothing shared; a fresh attempt succeeds
        recovered = recover_database(snap, VeriDBConfig(key_seed=11))
    assert recovered.sql("SELECT COUNT(*) FROM t").rows == [(24,)]


def test_snapshot_survives_drop_and_multiple_tables(db):
    db.sql("CREATE TABLE u (id INTEGER PRIMARY KEY, w INTEGER)")
    db.sql("INSERT INTO u VALUES (1, 11)")
    db.sql("CREATE TABLE doomed (id INTEGER PRIMARY KEY)")
    db.catalog.drop("doomed").store.destroy()
    recovered = recover_database(snapshot_database(db), VeriDBConfig(key_seed=12))
    names = {n.lower() for n in recovered.catalog.table_names()}
    assert names == {"t", "u"}
    assert recovered.sql("SELECT w FROM u").rows == [(11,)]


def test_schema_serialization_reexports_stay_importable():
    """Moved to repro.catalog.schema; the old private names must keep
    working for anything that pickled a reference to them."""
    from repro.catalog.schema import schema_from_dict, schema_to_dict
    from repro.core.recovery import _schema_from_dict, _schema_to_dict

    assert _schema_to_dict is schema_to_dict
    assert _schema_from_dict is schema_from_dict


def test_snapshot_disk_round_trip_unchanged(db, tmp_path):
    from repro.core.recovery import load_snapshot, save_snapshot

    path = tmp_path / "snap.json"
    total = save_snapshot(snapshot_database(db), path)
    assert total == 24
    recovered = recover_database(load_snapshot(path), VeriDBConfig(key_seed=13))
    assert recovered.sql("SELECT SUM(v) FROM t").rows == db.sql("SELECT SUM(v) FROM t").rows
