"""Regression tests for portal replay-state and retry semantics.

Covers two production bugs:

* the replay ledger (formerly an ever-growing ``set``) is now bounded —
  structured client qids compress into per-salt intervals and arbitrary
  qids fall into a fixed FIFO window;
* a query whose execution *fails* no longer burns its qid, so an honest
  client may retry the same authenticated query.
"""

import threading

import pytest

from repro.core.config import VeriDBConfig
from repro.core.database import VeriDB
from repro.core.portal import (
    AuthenticatedQuery,
    DEFAULT_REPLAY_WINDOW,
    QidLedger,
    QueryPortal,
)
from repro.crypto.mac import MessageAuthenticator
from repro.errors import AuthenticationError
from repro.obs import MetricsRegistry, scoped_registry


@pytest.fixture
def db():
    database = VeriDB(VeriDBConfig(key_seed=1))
    database.sql("CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)")
    database.sql("INSERT INTO t VALUES (1, 10), (2, 20)")
    return database


def make_query(db, sql, qid=b"qid-0001"):
    mac = MessageAuthenticator(db.enclave.keychain.mac_key)
    return AuthenticatedQuery(qid=qid, sql=sql, mac=mac.tag(qid, sql.encode()))


# ----------------------------------------------------------------------
# QidLedger unit behaviour
# ----------------------------------------------------------------------
def make_qid(salt: bytes, n: int) -> bytes:
    return salt.ljust(8, b"\0")[:8] + n.to_bytes(8, "little")


def test_consecutive_counters_compress_to_one_interval():
    ledger = QidLedger()
    for n in range(10_000):
        ledger.add(make_qid(b"salt-a", n))
    assert ledger.salt_count == 1
    assert ledger.interval_count == 1
    assert ledger.state_size() == 1
    assert make_qid(b"salt-a", 1234) in ledger
    assert make_qid(b"salt-a", 10_000) not in ledger


def test_out_of_order_counters_merge_when_gaps_fill():
    ledger = QidLedger()
    ledger.add(make_qid(b"s", 0))
    ledger.add(make_qid(b"s", 2))
    assert ledger.interval_count == 2
    ledger.add(make_qid(b"s", 1))  # bridges [0,0] and [2,2]
    assert ledger.interval_count == 1
    for n in (0, 1, 2):
        assert make_qid(b"s", n) in ledger


def test_salts_are_independent():
    ledger = QidLedger()
    ledger.add(make_qid(b"aaaa", 5))
    assert make_qid(b"bbbb", 5) not in ledger
    ledger.add(make_qid(b"bbbb", 5))
    assert ledger.salt_count == 2


def test_unstructured_qids_use_bounded_fifo_window():
    ledger = QidLedger(window=8)
    for i in range(20):
        ledger.add(b"odd-%03d" % i)  # not 16 bytes -> windowed
    assert ledger.window_size == 8
    assert ledger.state_size() == 8
    assert b"odd-019" in ledger
    assert b"odd-000" not in ledger  # oldest forgotten first


def test_window_must_hold_at_least_one_entry():
    with pytest.raises(ValueError):
        QidLedger(window=0)


# ----------------------------------------------------------------------
# bug 1: replay state stays bounded across many client queries
# ----------------------------------------------------------------------
def test_replay_state_does_not_grow_with_query_volume(db):
    client = db.connect()
    for _ in range(300):
        client.execute("SELECT * FROM t WHERE id = 1")
    # 300 queries from one client: one salt, one interval
    assert db.portal.seen_query_count() == 300
    assert db.portal.replay_state_size() == 1


def test_replay_state_gauge_exported():
    with scoped_registry(MetricsRegistry()) as reg:
        database = VeriDB(VeriDBConfig(key_seed=3))
        database.sql("CREATE TABLE t (id INTEGER PRIMARY KEY)")
        client = database.connect()
        for _ in range(50):
            client.execute("SELECT * FROM t")
        snap = reg.snapshot()
        assert snap["portal.qid_ledger_size"]["value"] == 1
        assert snap["portal.qid_salts"]["value"] == 1
        assert snap["portal.queries"]["value"] == 50


def test_replay_still_rejected_after_success(db):
    query = make_query(db, "SELECT * FROM t")
    db.portal.submit(query)
    with pytest.raises(AuthenticationError, match="replay"):
        db.portal.submit(query)


def test_replay_rejected_for_compressed_interval_members(db):
    client = db.connect()
    for _ in range(5):
        client.execute("SELECT * FROM t")
    # re-submit a qid that now lives inside a compressed interval
    replay = make_query(db, "SELECT * FROM t", qid=make_qid(b"x", 1))
    db.portal.submit(replay)
    with pytest.raises(AuthenticationError, match="replay"):
        db.portal.submit(replay)


# ----------------------------------------------------------------------
# bug 2: failed execution leaves the qid retryable
# ----------------------------------------------------------------------
def test_failed_execution_allows_honest_retry(db):
    bad = make_query(db, "SELECT * FROM missing_table", qid=b"retry-me")
    with pytest.raises(Exception):
        db.portal.submit(bad)
    db.sql("CREATE TABLE missing_table (id INTEGER PRIMARY KEY)")
    # the same authenticated query (same qid) must now succeed
    result = db.portal.submit(bad)
    assert result.rowcount == 0
    # ... and only then is the qid burned
    with pytest.raises(AuthenticationError, match="replay"):
        db.portal.submit(bad)


def test_failed_execution_not_counted_as_seen(db):
    bad = make_query(db, "SELECT * FROM nope", qid=b"gone")
    with pytest.raises(Exception):
        db.portal.submit(bad)
    assert db.portal.seen_query_count() == 0
    assert db.portal.replay_state_size() == 0


def test_execute_error_metrics():
    with scoped_registry(MetricsRegistry()) as reg:
        database = VeriDB(VeriDBConfig(key_seed=5))
        bad = make_query(database, "SELECT * FROM nope", qid=b"x1")
        with pytest.raises(Exception):
            database.portal.submit(bad)
        snap = reg.snapshot()
        assert snap["portal.execute_errors"]["value"] == 1
        assert snap["portal.queries"]["value"] == 0


def test_concurrent_duplicate_submission_executes_once(db):
    """While a qid is in flight, a duplicate is rejected, not re-run."""
    release = threading.Event()
    entered = threading.Event()
    original_execute = db.portal._engine.execute

    def slow_execute(sql, join_hint=None):
        entered.set()
        release.wait(5)
        return original_execute(sql, join_hint=join_hint)

    db.portal._engine.execute = slow_execute
    query = make_query(db, "SELECT * FROM t", qid=b"in-flight")
    outcomes = []

    def first():
        outcomes.append(("first", db.portal.submit(query)))

    t = threading.Thread(target=first)
    t.start()
    assert entered.wait(5)
    # duplicate arrives while the first copy is still executing
    with pytest.raises(AuthenticationError, match="replay"):
        db.portal.submit(query)
    release.set()
    t.join(5)
    assert len(outcomes) == 1
    assert db.portal.seen_query_count() == 1


def test_default_window_constant_is_sane():
    assert DEFAULT_REPLAY_WINDOW >= 1
    portal_window = QueryPortal.__init__.__defaults__
    assert DEFAULT_REPLAY_WINDOW in portal_window
