"""Disk persistence of replica snapshots."""

import json

import pytest

from repro.core.config import VeriDBConfig
from repro.core.database import VeriDB
from repro.core.recovery import (
    load_snapshot,
    recover_database,
    save_snapshot,
    snapshot_database,
)
from repro.errors import StorageError


@pytest.fixture
def db():
    database = VeriDB(VeriDBConfig(key_seed=88))
    database.sql(
        "CREATE TABLE t (id INTEGER PRIMARY KEY, d DATE, f FLOAT, "
        "s TEXT, b BOOLEAN, CHAIN (d))"
    )
    database.sql(
        "INSERT INTO t VALUES "
        "(1, DATE '2021-06-20', 1.5, 'x', TRUE), "
        "(2, DATE '1992-01-01', -2.25, NULL, FALSE)"
    )
    database.sql("CREATE TABLE empty (id INTEGER PRIMARY KEY)")
    return database


def test_save_load_roundtrip(db, tmp_path):
    path = tmp_path / "replica.snapshot"
    total = save_snapshot(snapshot_database(db), path)
    assert total == 2
    loaded = load_snapshot(path)
    assert [name for name, _, _ in loaded.tables] == ["empty", "t"]
    name, schema, rows = loaded.tables[1]
    assert schema.chains == ("id", "d")
    assert len(rows) == 2
    original = snapshot_database(db).tables[1][2]
    assert rows == original


def test_recover_from_disk(db, tmp_path):
    path = tmp_path / "replica.snapshot"
    save_snapshot(snapshot_database(db), path)
    recovered = recover_database(load_snapshot(path), VeriDBConfig(key_seed=89))
    assert recovered.sql("SELECT * FROM t ORDER BY id").rows == db.sql(
        "SELECT * FROM t ORDER BY id"
    ).rows
    # chains were rebuilt: range access on the chained date column works
    assert recovered.sql(
        "SELECT id FROM t WHERE d >= DATE '2000-01-01'"
    ).rows == [(1,)]
    recovered.verify_now()


def test_unsupported_version_rejected(db, tmp_path):
    path = tmp_path / "replica.snapshot"
    save_snapshot(snapshot_database(db), path)
    payload = json.loads(path.read_text())
    payload["version"] = 99
    path.write_text(json.dumps(payload))
    with pytest.raises(ValueError):
        load_snapshot(path)


def test_corrupted_rows_rejected(db, tmp_path):
    path = tmp_path / "replica.snapshot"
    save_snapshot(snapshot_database(db), path)
    payload = json.loads(path.read_text())
    payload["tables"][1]["rows"][0] = "deadbeef"
    path.write_text(json.dumps(payload))
    with pytest.raises(StorageError):
        load_snapshot(path)


def test_decimal_schema_roundtrip(tmp_path):
    from repro.catalog.schema import Column, Schema
    from repro.catalog.types import DecimalType, IntegerType

    db = VeriDB(VeriDBConfig(key_seed=90))
    schema = Schema(
        columns=[
            Column("id", IntegerType()),
            Column("price", DecimalType(scale=4)),
        ],
        primary_key="id",
    )
    db.create_table("money", schema)
    db.table("money").insert((1, 12345))
    path = tmp_path / "snap"
    save_snapshot(snapshot_database(db), path)
    loaded = load_snapshot(path)
    _, restored_schema, rows = loaded.tables[0]
    assert restored_schema.column("price").type == DecimalType(scale=4)
    assert rows == [(1, 12345)]
