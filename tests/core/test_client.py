"""Unit tests for the client library and the interval audit log."""

import pytest

from repro.core.client import IntervalSet
from repro.core.config import VeriDBConfig
from repro.core.database import VeriDB
from repro.errors import AuthenticationError


# ----------------------------------------------------------------------
# IntervalSet
# ----------------------------------------------------------------------
def test_intervalset_consecutive_stays_one_interval():
    s = IntervalSet()
    for i in range(1, 1000):
        assert s.add(i)
    assert s.interval_count == 1
    assert len(s) == 999


def test_intervalset_detects_duplicates():
    s = IntervalSet()
    assert s.add(5)
    assert not s.add(5)
    assert 5 in s
    assert 6 not in s


def test_intervalset_merges_gap_fill():
    s = IntervalSet()
    s.add(1)
    s.add(3)
    assert s.interval_count == 2
    s.add(2)
    assert s.interval_count == 1
    assert s.intervals() == [(1, 3)]


def test_intervalset_out_of_order_delivery():
    """Sequence numbers may arrive out of order (footnote 1 in the paper)."""
    s = IntervalSet()
    for value in (4, 1, 3, 2, 7, 6, 5):
        assert s.add(value)
    assert s.interval_count == 1
    assert len(s) == 7


def test_intervalset_extends_right():
    s = IntervalSet()
    s.add(10)
    s.add(9)
    assert s.intervals() == [(9, 10)]


# ----------------------------------------------------------------------
# end-to-end client
# ----------------------------------------------------------------------
@pytest.fixture
def db():
    database = VeriDB(VeriDBConfig(key_seed=2))
    database.sql("CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)")
    database.sql("INSERT INTO t VALUES (1, 10), (2, 20)")
    return database


def test_client_roundtrip(db):
    client = db.connect()
    result = client.execute("SELECT v FROM t WHERE id = 2")
    assert result.rows == ((20,),)
    assert result.columns == ("v",)
    assert result.sequence_number == 1


def test_client_tracks_audit_log(db):
    client = db.connect()
    for _ in range(5):
        client.execute("SELECT * FROM t")
    assert client.queries_verified == 5
    assert client.audit_storage_intervals == 1


def test_client_detects_forged_response(db):
    client = db.connect()
    genuine_submit = client._submit

    def tamper(query):
        endorsed = genuine_submit(query)
        rows = ((999, 999),) + endorsed.rows[1:]
        return type(endorsed)(
            qid=endorsed.qid,
            sequence_number=endorsed.sequence_number,
            columns=endorsed.columns,
            rows=rows,
            rowcount=endorsed.rowcount,
            result_digest=endorsed.result_digest,
            endorsement=endorsed.endorsement,
        )

    client._submit = tamper
    with pytest.raises(AuthenticationError):
        client.execute("SELECT * FROM t")


def test_client_detects_reforged_digest(db):
    """Recomputing the digest over tampered rows still fails: the
    endorsement MAC covers the digest and only the enclave has the key
    ... unless the adversary also holds the client key, which is outside
    the threat model."""
    client = db.connect()
    genuine_submit = client._submit

    def tamper(query):
        endorsed = genuine_submit(query)
        from repro.core.portal import digest_result

        rows = ((999, 999),)
        digest = digest_result(endorsed.columns, rows, 1)
        return type(endorsed)(
            qid=endorsed.qid,
            sequence_number=endorsed.sequence_number,
            columns=endorsed.columns,
            rows=rows,
            rowcount=1,
            result_digest=digest,
            endorsement=endorsed.endorsement,  # stale MAC
        )

    client._submit = tamper
    with pytest.raises(AuthenticationError):
        client.execute("SELECT * FROM t")


def test_client_detects_replayed_response_sequence_number(db):
    client = db.connect()
    genuine_submit = client._submit
    first = {}

    def replay(query):
        endorsed = genuine_submit(query)
        if not first:
            first["r"] = endorsed
            return endorsed
        # splice an old (qid-matching is impossible, so fake full replay
        # by reusing the first response's sequence number legitimately
        # re-signed — simulate by replaying the whole response for the
        # same query id)
        return endorsed

    client._submit = replay
    client.execute("SELECT * FROM t")
    client.execute("SELECT * FROM t")  # normal path still fine


def test_attestation_rejects_wrong_measurement(db):
    from repro.errors import AttestationError
    from repro.sgx.attestation import measure

    with pytest.raises(AttestationError):
        db.connect(expected_measurement=measure([b"not-veridb"]))


def test_two_clients_independent_audits(db):
    a = db.connect(name="a")
    b = db.connect(name="b")
    a.execute("SELECT * FROM t")
    b.execute("SELECT * FROM t")
    assert a.queries_verified == 1
    assert b.queries_verified == 1
