"""The enclave-resident footprint stays within the EPC budget.

Section 3.3's design premise: the complete database lives outside the
enclave and only a small synopsis stays inside. These tests tie the
accounting together: growing the database by orders of magnitude grows
the EPC-resident synopsis only marginally, and never triggers the
(expensive, 40000-cycle) page swaps the design exists to avoid.
"""


from repro.core.config import VeriDBConfig
from repro.core.database import VeriDB
from repro.storage.config import StorageConfig


def test_synopsis_tracked_in_epc():
    db = VeriDB(VeriDBConfig(key_seed=101))
    db.sql("CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)")
    for i in range(200):
        db.sql(f"INSERT INTO t VALUES ({i}, '{'x' * 200}')")
    stats = db.stats()
    assert stats["epc"]["resident"] == stats["enclave_state_bytes"]
    assert stats["epc"]["resident"] < stats["epc"]["capacity"]
    assert stats["cycles"]["epc_swaps"] == 0


def test_synopsis_grows_sublinearly_with_data():
    def synopsis_bytes(rows):
        db = VeriDB(VeriDBConfig(key_seed=102))
        db.sql("CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)")
        table = db.table("t")
        for i in range(rows):
            table.insert((i, "x" * 200))
        return db.stats()["enclave_state_bytes"], db.storage.memory

    small, _ = synopsis_bytes(50)
    big, memory = synopsis_bytes(2000)
    data_bytes = sum(len(cell.data) for _addr, cell in memory.cells())
    # 40x more data; the synopsis grows by far less and is a tiny
    # fraction of what lives in untrusted memory
    assert big < small * 10
    assert big < data_bytes / 50


def test_spill_epc_accounting_inside_veridb():
    db = VeriDB(
        VeriDBConfig(
            storage=StorageConfig(spill_threshold_rows=16), key_seed=103
        )
    )
    db.sql("CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)")
    for i in range(100):
        db.sql(f"INSERT INTO t VALUES ({i}, {i * 31 % 97})")
    db.sql("SELECT v FROM t ORDER BY v")
    # spill buffers were charged to the enclave's EPC and released
    assert db.engine.spill.stats.rows_spilled > 0
    usage = db.enclave.epc.usage()
    assert usage["allocations"] == 1  # only the synopsis remains
    assert db.stats()["cycles"]["epc_swaps"] == 0
