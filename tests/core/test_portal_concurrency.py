"""Concurrent clients through the portal (ECall path)."""

import threading

import pytest

from repro.core.config import VeriDBConfig
from repro.core.database import VeriDB
from repro.workloads.runner import run_threaded


@pytest.fixture
def db():
    database = VeriDB(VeriDBConfig(key_seed=44))
    database.sql(
        "CREATE TABLE kv (k INTEGER PRIMARY KEY, v INTEGER)"
    )
    for i in range(50):
        database.sql(f"INSERT INTO kv VALUES ({i}, {i})")
    return database


def test_concurrent_clients_all_verified(db):
    def worker(index):
        client = db.connect(name=f"c{index}")
        for i in range(25):
            result = client.execute(f"SELECT v FROM kv WHERE k = {i}")
            assert result.rows == ((i,),)
        return client.queries_verified

    _, total = run_threaded(worker, 4)
    assert total == 100
    assert db.portal.seen_query_count() == 100


def test_sequence_numbers_globally_unique_under_concurrency(db):
    seen = set()
    lock = threading.Lock()

    def worker(index):
        client = db.connect(name=f"c{index}")
        for _ in range(30):
            result = client.execute("SELECT COUNT(*) FROM kv")
            with lock:
                assert result.sequence_number not in seen
                seen.add(result.sequence_number)
        return 1

    run_threaded(worker, 4)
    assert len(seen) == 120


def test_concurrent_writes_through_portal(db):
    def worker(index):
        client = db.connect(name=f"w{index}")
        base = 1000 + index * 100
        for i in range(20):
            client.execute(f"INSERT INTO kv VALUES ({base + i}, 0)")
        return 1

    run_threaded(worker, 3)
    assert db.sql("SELECT COUNT(*) FROM kv").rows == [(50 + 60,)]
    db.verify_now()


def test_ecall_count_matches_queries(db):
    before = db.enclave.meter.snapshot()["ecalls"]

    def worker(index):
        client = db.connect(name=f"e{index}")
        for _ in range(10):
            client.execute("SELECT COUNT(*) FROM kv")
        return 1

    run_threaded(worker, 2)
    after = db.enclave.meter.snapshot()["ecalls"]
    assert after - before == 20  # exactly one boundary crossing per query
