"""Concurrent clients through the portal (ECall path)."""

import threading

import pytest

from repro.core.config import VeriDBConfig
from repro.core.database import VeriDB
from repro.workloads.runner import run_threaded


@pytest.fixture
def db():
    database = VeriDB(VeriDBConfig(key_seed=44))
    database.sql(
        "CREATE TABLE kv (k INTEGER PRIMARY KEY, v INTEGER)"
    )
    for i in range(50):
        database.sql(f"INSERT INTO kv VALUES ({i}, {i})")
    return database


def test_concurrent_clients_all_verified(db):
    def worker(index):
        client = db.connect(name=f"c{index}")
        for i in range(25):
            result = client.execute(f"SELECT v FROM kv WHERE k = {i}")
            assert result.rows == ((i,),)
        return client.queries_verified

    _, total = run_threaded(worker, 4)
    assert total == 100
    assert db.portal.seen_query_count() == 100


def test_sequence_numbers_globally_unique_under_concurrency(db):
    seen = set()
    lock = threading.Lock()

    def worker(index):
        client = db.connect(name=f"c{index}")
        for _ in range(30):
            result = client.execute("SELECT COUNT(*) FROM kv")
            with lock:
                assert result.sequence_number not in seen
                seen.add(result.sequence_number)
        return 1

    run_threaded(worker, 4)
    assert len(seen) == 120


def test_concurrent_writes_through_portal(db):
    def worker(index):
        client = db.connect(name=f"w{index}")
        base = 1000 + index * 100
        for i in range(20):
            client.execute(f"INSERT INTO kv VALUES ({base + i}, 0)")
        return 1

    run_threaded(worker, 3)
    assert db.sql("SELECT COUNT(*) FROM kv").rows == [(50 + 60,)]
    db.verify_now()


def test_ecall_count_matches_queries(db):
    before = db.enclave.meter.snapshot()["ecalls"]

    def worker(index):
        client = db.connect(name=f"e{index}")
        for _ in range(10):
            client.execute("SELECT COUNT(*) FROM kv")
        return 1

    run_threaded(worker, 2)
    after = db.enclave.meter.snapshot()["ecalls"]
    assert after - before == 20  # exactly one boundary crossing per query


# ----------------------------------------------------------------------
# replay, reservation and sampling under interleaving
# ----------------------------------------------------------------------
def _make_query(db, sql, qid):
    from repro.core.portal import AuthenticatedQuery
    from repro.crypto.mac import MessageAuthenticator

    mac = MessageAuthenticator(db.enclave.keychain.mac_key)
    return AuthenticatedQuery(qid=qid, sql=sql, mac=mac.tag(qid, sql.encode()))


def test_concurrent_same_qid_exactly_one_success(db):
    """N racing submissions of one qid: one executes, N-1 are replays."""
    from repro.errors import QueryReplayError

    query = _make_query(db, "SELECT COUNT(*) FROM kv", qid=b"race" * 4)
    barrier = threading.Barrier(8)
    outcomes = []
    lock = threading.Lock()

    def racer(_index):
        barrier.wait()
        try:
            db.portal.submit(query)
            verdict = "ok"
        except QueryReplayError:
            verdict = "replay"
        with lock:
            outcomes.append(verdict)
        return 1

    run_threaded(racer, 8)
    assert sorted(outcomes) == ["ok"] + ["replay"] * 7
    assert db.portal.seen_query_count() == 1


def test_pending_reservation_blocks_in_flight_duplicate(db):
    """A qid is unavailable the moment it is admitted, not on completion."""
    from repro.errors import QueryReplayError

    started = threading.Event()
    release = threading.Event()
    inner = db.portal._engine

    class GatedEngine:
        def execute(self, sql, join_hint=None):
            started.set()
            assert release.wait(timeout=10)
            return inner.execute(sql, join_hint=join_hint)

    db.portal._engine = GatedEngine()
    try:
        query = _make_query(db, "SELECT COUNT(*) FROM kv", qid=b"pend" * 4)
        first = threading.Thread(target=db.portal.submit, args=(query,))
        first.start()
        assert started.wait(timeout=10)
        # the first submission is still executing; its qid is reserved
        with pytest.raises(QueryReplayError):
            db.portal.submit(query)
    finally:
        release.set()
        first.join(timeout=10)
        db.portal._engine = inner
    assert db.portal.seen_query_count() == 1


def test_failed_execution_leaves_qid_retryable(db):
    """The reserve-don't-record protocol: errors unburn the qid."""
    from repro.errors import VeriDBError

    qid = b"oops" * 4
    bad = _make_query(db, "SELECT nope FROM missing", qid=qid)
    with pytest.raises(VeriDBError):
        db.portal.submit(bad)
    # the honest client fixes its query and retries under the same qid
    good = _make_query(db, "SELECT COUNT(*) FROM kv", qid=qid)
    assert db.portal.submit(good).rowcount == 1


def test_sequence_numbers_contiguous_under_concurrency(db):
    """Strict uniqueness: N queries burn exactly sequence numbers 1..N."""
    seen = set()
    lock = threading.Lock()

    def worker(index):
        for i in range(25):
            qid = bytes([index]) * 8 + i.to_bytes(8, "little")
            result = db.portal.submit(
                _make_query(db, "SELECT COUNT(*) FROM kv", qid=qid)
            )
            with lock:
                seen.add(result.sequence_number)
        return 1

    run_threaded(worker, 4)
    assert seen == set(range(1, 101))


def test_trace_sampling_deterministic_under_interleaving():
    """Sampled-trace count depends only on query count, never on timing."""
    from repro.obs import MetricsRegistry, scoped_registry

    for attempt in range(3):
        with scoped_registry(MetricsRegistry()) as registry:
            database = VeriDB(
                VeriDBConfig(key_seed=44, trace_sample_rate=0.25)
            )
            database.sql("CREATE TABLE kv (k INTEGER PRIMARY KEY)")
            database.sql("INSERT INTO kv VALUES (1)")

            def worker(index):
                for i in range(20):
                    qid = bytes([index + 1]) * 8 + i.to_bytes(8, "little")
                    database.portal.submit(
                        _make_query(database, "SELECT COUNT(*) FROM kv", qid=qid)
                    )
                return 1

            run_threaded(worker, 4)
            assert registry.counter("portal.traces_sampled").value == 20
