"""Unit tests for the query portal: authorization and endorsement."""

import pytest

from repro.core.database import VeriDB
from repro.core.config import VeriDBConfig
from repro.core.portal import AuthenticatedQuery, digest_result
from repro.crypto.mac import MessageAuthenticator
from repro.errors import AuthenticationError


@pytest.fixture
def db():
    database = VeriDB(VeriDBConfig(key_seed=1))
    database.sql("CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)")
    database.sql("INSERT INTO t VALUES (1, 10), (2, 20)")
    return database


def make_query(db, sql, qid=b"qid-0001"):
    mac = MessageAuthenticator(db.enclave.keychain.mac_key)
    return AuthenticatedQuery(qid=qid, sql=sql, mac=mac.tag(qid, sql.encode()))


def test_authorized_query_executes(db):
    result = db.portal.submit(make_query(db, "SELECT * FROM t"))
    assert result.rowcount == 2
    assert result.sequence_number == 1


def test_sequence_numbers_increase(db):
    r1 = db.portal.submit(make_query(db, "SELECT * FROM t", qid=b"q1"))
    r2 = db.portal.submit(make_query(db, "SELECT * FROM t", qid=b"q2"))
    assert r2.sequence_number > r1.sequence_number


def test_forged_mac_rejected(db):
    query = AuthenticatedQuery(
        qid=b"evil", sql="DELETE FROM t", mac=b"\x00" * 32
    )
    with pytest.raises(AuthenticationError):
        db.portal.submit(query)
    # and the data was not touched
    assert db.sql("SELECT COUNT(*) FROM t").rows == [(2,)]


def test_replayed_qid_rejected(db):
    query = make_query(db, "SELECT * FROM t")
    db.portal.submit(query)
    with pytest.raises(AuthenticationError):
        db.portal.submit(query)


def test_tampered_sql_rejected(db):
    genuine = make_query(db, "SELECT * FROM t")
    tampered = AuthenticatedQuery(
        qid=genuine.qid, sql="DELETE FROM t", mac=genuine.mac
    )
    with pytest.raises(AuthenticationError):
        db.portal.submit(tampered)


def test_endorsement_binds_result(db):
    result = db.portal.submit(make_query(db, "SELECT * FROM t"))
    mac = MessageAuthenticator(db.enclave.keychain.mac_key)
    assert mac.verify(
        result.endorsement,
        result.qid,
        result.sequence_number.to_bytes(8, "little"),
        result.result_digest,
    )
    assert result.result_digest == digest_result(
        result.columns, result.rows, result.rowcount
    )


def test_digest_sensitive_to_rows():
    a = digest_result(("c",), ((1,),), 1)
    b = digest_result(("c",), ((2,),), 1)
    assert a != b


def test_seen_query_count(db):
    assert db.portal.seen_query_count() == 0
    db.portal.submit(make_query(db, "SELECT * FROM t"))
    assert db.portal.seen_query_count() == 1
