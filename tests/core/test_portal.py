"""Unit tests for the query portal: authorization and endorsement."""

import pytest

from repro.core.database import VeriDB
from repro.core.config import VeriDBConfig
from repro.core.portal import AuthenticatedQuery, digest_result
from repro.crypto.mac import MessageAuthenticator
from repro.errors import AuthenticationError


@pytest.fixture
def db():
    database = VeriDB(VeriDBConfig(key_seed=1))
    database.sql("CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)")
    database.sql("INSERT INTO t VALUES (1, 10), (2, 20)")
    return database


def make_query(db, sql, qid=b"qid-0001"):
    mac = MessageAuthenticator(db.enclave.keychain.mac_key)
    return AuthenticatedQuery(qid=qid, sql=sql, mac=mac.tag(qid, sql.encode()))


def test_authorized_query_executes(db):
    result = db.portal.submit(make_query(db, "SELECT * FROM t"))
    assert result.rowcount == 2
    assert result.sequence_number == 1


def test_sequence_numbers_increase(db):
    r1 = db.portal.submit(make_query(db, "SELECT * FROM t", qid=b"q1"))
    r2 = db.portal.submit(make_query(db, "SELECT * FROM t", qid=b"q2"))
    assert r2.sequence_number > r1.sequence_number


def test_forged_mac_rejected(db):
    query = AuthenticatedQuery(
        qid=b"evil", sql="DELETE FROM t", mac=b"\x00" * 32
    )
    with pytest.raises(AuthenticationError):
        db.portal.submit(query)
    # and the data was not touched
    assert db.sql("SELECT COUNT(*) FROM t").rows == [(2,)]


def test_replayed_qid_rejected(db):
    query = make_query(db, "SELECT * FROM t")
    db.portal.submit(query)
    with pytest.raises(AuthenticationError):
        db.portal.submit(query)


def test_tampered_sql_rejected(db):
    genuine = make_query(db, "SELECT * FROM t")
    tampered = AuthenticatedQuery(
        qid=genuine.qid, sql="DELETE FROM t", mac=genuine.mac
    )
    with pytest.raises(AuthenticationError):
        db.portal.submit(tampered)


def test_endorsement_binds_result(db):
    result = db.portal.submit(make_query(db, "SELECT * FROM t"))
    mac = MessageAuthenticator(db.enclave.keychain.mac_key)
    assert mac.verify(
        result.endorsement,
        result.qid,
        result.sequence_number.to_bytes(8, "little"),
        result.result_digest,
    )
    assert result.result_digest == digest_result(
        result.columns, result.rows, result.rowcount
    )


def test_digest_sensitive_to_rows():
    a = digest_result(("c",), ((1,),), 1)
    b = digest_result(("c",), ((2,),), 1)
    assert a != b


def test_seen_query_count(db):
    assert db.portal.seen_query_count() == 0
    db.portal.submit(make_query(db, "SELECT * FROM t"))
    assert db.portal.seen_query_count() == 1


# ----------------------------------------------------------------------
# degenerate qids and the bounded replay window
# ----------------------------------------------------------------------
def test_empty_qid_rejected(db):
    from repro.obs import MetricsRegistry, scoped_registry

    with scoped_registry(MetricsRegistry()) as registry:
        database = VeriDB(VeriDBConfig(key_seed=1))
        database.sql("CREATE TABLE t (id INTEGER PRIMARY KEY)")
        with pytest.raises(AuthenticationError, match="degenerate"):
            database.portal.submit(make_query(database, "SELECT * FROM t", qid=b""))
        assert registry.counter("portal.degenerate_qids").value == 1
        assert registry.counter("portal.auth_failures").value == 1


def test_oversized_qid_rejected(db):
    from repro.core.portal import MAX_QID_BYTES

    huge = b"x" * (MAX_QID_BYTES + 1)
    with pytest.raises(AuthenticationError, match="degenerate"):
        db.portal.submit(make_query(db, "SELECT * FROM t", qid=huge))
    # a qid exactly at the bound is fine
    edge = b"x" * MAX_QID_BYTES
    assert db.portal.submit(make_query(db, "SELECT * FROM t", qid=edge)).rowcount == 2


def test_degenerate_qid_never_reaches_ledger(db):
    with pytest.raises(AuthenticationError):
        db.portal.submit(make_query(db, "SELECT * FROM t", qid=b""))
    assert db.portal.seen_query_count() == 0


def test_window_evictions_counted():
    from repro.core.portal import QidLedger

    ledger = QidLedger(window=4)
    # non-structured qids (not 16 bytes) share the FIFO window
    for i in range(10):
        ledger.add(b"odd-%d" % i)
    assert ledger.window_evictions == 6
    # the forgotten qid is replayable again: the documented tradeoff
    assert b"odd-0" not in ledger
    assert b"odd-9" in ledger


def test_structured_qids_never_evict():
    from repro.core.portal import QidLedger

    ledger = QidLedger(window=4)
    salt = b"s" * 8
    for i in range(1000):
        ledger.add(salt + i.to_bytes(8, "little"))
    assert ledger.window_evictions == 0
    assert salt + (0).to_bytes(8, "little") in ledger


def test_replay_rejection_is_typed(db):
    from repro.errors import QueryReplayError

    query = make_query(db, "SELECT * FROM t")
    db.portal.submit(query)
    with pytest.raises(QueryReplayError) as caught:
        db.portal.submit(query)
    assert caught.value.qid == query.qid
    # back-compat: existing except AuthenticationError handlers still fire
    assert isinstance(caught.value, AuthenticationError)
