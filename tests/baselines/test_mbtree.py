"""Unit tests for the MB-Tree baseline."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.mbtree import MBTree, verify_point_proof
from repro.errors import ProofError


def build(n=100, order=8):
    tree = MBTree(order=order)
    for i in range(n):
        tree.insert(i, f"value-{i}".encode())
    return tree


def test_get_present_with_valid_proof():
    tree = build()
    value, proof = tree.get(42)
    assert value == b"value-42"
    assert verify_point_proof(tree.root_hash, proof) == b"value-42"


def test_get_absent_with_valid_proof():
    tree = build()
    value, proof = tree.get(1000)
    assert value is None
    assert verify_point_proof(tree.root_hash, proof) is None


def test_proof_fails_against_stale_root():
    tree = build()
    _, proof = tree.get(42)
    tree.update(42, b"changed")  # root hash moves
    with pytest.raises(ProofError):
        verify_point_proof(tree.root_hash, proof)


def test_tampered_proof_value_detected():
    tree = build()
    _, proof = tree.get(42)
    index = proof.leaf_keys.index(42)
    values = list(proof.leaf_values)
    values[index] = b"forged"
    proof.leaf_values = tuple(values)
    with pytest.raises(ProofError):
        verify_point_proof(tree.root_hash, proof)


def test_omitted_leaf_entry_detected():
    tree = build()
    _, proof = tree.get(42)
    index = proof.leaf_keys.index(42)
    proof.leaf_keys = proof.leaf_keys[:index] + proof.leaf_keys[index + 1 :]
    proof.leaf_values = proof.leaf_values[:index] + proof.leaf_values[index + 1 :]
    with pytest.raises(ProofError):
        verify_point_proof(tree.root_hash, proof)


def test_wrong_path_detected():
    tree = build()
    _, proof_a = tree.get(5)
    _, proof_b = tree.get(95)
    # graft a's leaf onto b's path
    proof_b.leaf_keys = proof_a.leaf_keys
    proof_b.leaf_values = proof_a.leaf_values
    with pytest.raises(ProofError):
        verify_point_proof(tree.root_hash, proof_b)


def test_every_write_changes_root():
    tree = build(10)
    r0 = tree.root_hash
    tree.insert(100, b"x")
    r1 = tree.root_hash
    tree.update(100, b"y")
    r2 = tree.root_hash
    tree.delete(100)
    r3 = tree.root_hash
    assert len({r0, r1, r2}) == 3
    # deleting the inserted key restores the identical content, so the
    # Merkle commitment returns to its original value — determinism
    assert r3 == r0


def test_delete_and_absence():
    tree = build(50)
    assert tree.delete(25)
    assert not tree.delete(25)
    value, proof = tree.get(25)
    assert value is None
    assert verify_point_proof(tree.root_hash, proof) is None
    assert len(tree) == 49


def test_range_query_with_boundary_proofs():
    tree = build(100, order=8)
    results, proofs = tree.range(20, 30)
    assert [k for k, _ in results] == list(range(20, 31))
    assert proofs
    for proof in proofs:
        verify_point_proof(tree.root_hash, proof)


def test_range_empty_tree():
    tree = MBTree()
    results, proofs = tree.range(1, 5)
    assert results == []


def test_items_ordered_after_churn():
    tree = MBTree(order=4)
    rng = random.Random(7)
    keys = rng.sample(range(500), 200)
    for k in keys:
        tree.insert(k, str(k).encode())
    for k in keys[:100]:
        tree.delete(k)
    remaining = sorted(keys[100:])
    assert [k for k, _ in tree.items()] == remaining


def test_hash_work_counted():
    tree = build(100)
    before = tree.hash_recomputations
    tree.update(1, b"new")
    assert tree.hash_recomputations > before


@settings(max_examples=25, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["insert", "delete", "update"]),
            st.integers(min_value=0, max_value=60),
        ),
        max_size=120,
    )
)
def test_proofs_always_verify_against_current_root(ops):
    tree = MBTree(order=4)
    model = {}
    for op, key in ops:
        if op == "insert":
            tree.insert(key, b"v%d" % key)
            model[key] = b"v%d" % key
        elif op == "update":
            updated = tree.update(key, b"u%d" % key)
            assert updated == (key in model)
            if updated:
                model[key] = b"u%d" % key
        else:
            assert tree.delete(key) == (key in model)
            model.pop(key, None)
    for probe in range(0, 61, 5):
        value, proof = tree.get(probe)
        assert value == model.get(probe)
        assert verify_point_proof(tree.root_hash, proof) == model.get(probe)
