"""Client-side MB-Tree range verification (Example 2.1)."""

import pytest

from repro.baselines.mbtree import MBTree, verify_range_proof
from repro.errors import ProofError


def build(n=100, order=8):
    tree = MBTree(order=order)
    for i in range(n):
        tree.insert(i, f"v{i}".encode())
    return tree


def test_honest_range_verifies():
    tree = build()
    results, proofs = tree.range(20, 35)
    verify_range_proof(tree.root_hash, proofs, 20, 35, results)
    assert [k for k, _ in results] == list(range(20, 36))


def test_range_spanning_many_leaves():
    tree = build(300, order=4)
    results, proofs = tree.range(50, 250)
    assert len(proofs) > 10
    verify_range_proof(tree.root_hash, proofs, 50, 250, results)


def test_range_at_left_edge():
    tree = build()
    results, proofs = tree.range(0, 5)
    verify_range_proof(tree.root_hash, proofs, 0, 5, results)


def test_range_at_right_edge():
    tree = build()
    results, proofs = tree.range(95, 200)
    verify_range_proof(tree.root_hash, proofs, 95, 200, results)
    assert [k for k, _ in results] == list(range(95, 100))


def test_empty_range_still_proven():
    tree = build()
    tree.delete(50)
    results, proofs = tree.range(50, 50)
    assert results == []
    verify_range_proof(tree.root_hash, proofs, 50, 50, results)


def test_omitted_result_detected():
    tree = build()
    results, proofs = tree.range(20, 35)
    tampered = [r for r in results if r[0] != 27]
    with pytest.raises(ProofError):
        verify_range_proof(tree.root_hash, proofs, 20, 35, tampered)


def test_fabricated_result_detected():
    tree = build()
    results, proofs = tree.range(20, 35)
    tampered = results + [(36, b"forged")]
    with pytest.raises(ProofError):
        verify_range_proof(tree.root_hash, proofs, 20, 35, tampered)


def test_omitted_middle_leaf_detected():
    """The adjacency check catches a whole leaf dropped from the middle."""
    tree = build(200, order=4)
    results, proofs = tree.range(50, 150)
    assert len(proofs) >= 3
    dropped_leaf = proofs[len(proofs) // 2]
    remaining = [p for p in proofs if p is not dropped_leaf]
    surviving = [
        r
        for r in results
        if r[0] not in dropped_leaf.leaf_keys
    ]
    with pytest.raises(ProofError):
        verify_range_proof(tree.root_hash, remaining, 50, 150, surviving)


def test_truncated_tail_detected():
    tree = build(200, order=4)
    results, proofs = tree.range(50, 150)
    cut = proofs[: len(proofs) // 2]
    surviving_keys = {k for p in cut for k in p.leaf_keys}
    surviving = [r for r in results if r[0] in surviving_keys]
    with pytest.raises(ProofError):
        verify_range_proof(tree.root_hash, cut, 50, 150, surviving)


def test_wrong_left_boundary_detected():
    """Starting the proof at a later leaf misses in-range predecessors."""
    tree = build(200, order=4)
    results, proofs = tree.range(50, 150)
    shifted = proofs[1:]
    shifted_keys = {k for p in shifted for k in p.leaf_keys}
    surviving = [r for r in results if r[0] in shifted_keys]
    with pytest.raises(ProofError):
        verify_range_proof(tree.root_hash, shifted, 50, 150, surviving)


def test_stale_root_detected():
    tree = build()
    results, proofs = tree.range(20, 35)
    tree.insert(1000, b"new")
    with pytest.raises(ProofError):
        verify_range_proof(tree.root_hash, proofs, 20, 35, results)


def test_empty_proof_rejected():
    tree = build()
    with pytest.raises(ProofError):
        verify_range_proof(tree.root_hash, [], 1, 2, [])
