"""The lost-response retry protocol (headline bugfix of this PR).

If a query succeeds inside the portal but its endorsed response dies in
transport, the client's retry of the same qid is — correctly — rejected
as a replay. The old behaviour surfaced that rejection as a generic
:class:`AuthenticationError`, indistinguishable from an attack. The
client must instead raise a typed :class:`ResponseLost` and remain able
to resubmit under a fresh qid with no rollback false positive.
"""

import pytest

from repro.core.config import VeriDBConfig
from repro.core.database import VeriDB
from repro.errors import (
    AuthenticationError,
    QueryReplayError,
    ResponseLost,
    TransientFault,
)
from repro.faults import sites
from repro.faults.plane import ChaosPlane, scoped_fault_plane
from repro.faults.schedule import ChaosSchedule
from repro.obs import MetricsRegistry, scoped_registry
from repro.service import QueryService, ServiceConfig


def build_db(seed=23):
    db = VeriDB(VeriDBConfig(key_seed=seed))
    db.sql("CREATE TABLE t (k INTEGER PRIMARY KEY, v INTEGER)")
    db.sql("INSERT INTO t VALUES (1, 100)")
    db.sql("INSERT INTO t VALUES (2, 200)")
    return db


# ----------------------------------------------------------------------
# client-level: a transport that eats the first response
# ----------------------------------------------------------------------
def test_lost_response_is_typed_not_generic_auth_error():
    db = build_db()
    direct = lambda query: db.enclave.ecall("submit_query", query)
    dropped = []

    def lossy(query):
        result = direct(query)
        if not dropped:
            # the portal has executed and burned the qid; the endorsed
            # result dies on the way back
            dropped.append(query.qid)
            raise TransientFault("transport dropped the response")
        return result

    client_db = db.connect(name="direct")  # handshake sanity
    assert client_db.execute("SELECT v FROM t WHERE k = 1").rows == ((100,),)

    from repro.core.client import VeriDBClient

    client = VeriDBClient(lossy, db.enclave.keychain.mac_key, name="lossy")
    with pytest.raises(ResponseLost) as caught:
        client.execute("SELECT v FROM t WHERE k = 2")
    assert caught.value.qid == dropped[0]
    assert caught.value.sql == "SELECT v FROM t WHERE k = 2"
    assert client.responses_lost == 1

    # recovery: the same SQL under a fresh qid, audited, no rollback
    # false positive — this is the acceptance criterion
    result = client.execute("SELECT v FROM t WHERE k = 2")
    assert result.rows == ((200,),)
    assert client.queries_verified == 1


def test_first_attempt_replay_rejection_stays_an_attack_signal():
    """A replay rejection with no preceding transport failure is a forgery."""
    db = build_db()
    client = db.connect(name="honest")
    client.execute("SELECT v FROM t WHERE k = 1")

    # an adversary pre-burns the client's next qid by replaying traffic
    # it observed: the client's fresh submission is rejected on its very
    # first attempt, which must NOT be softened into ResponseLost
    from repro.core.client import VeriDBClient

    victim = VeriDBClient(
        lambda query: (_ for _ in ()).throw(
            QueryReplayError("already executed", qid=query.qid)
        ),
        db.enclave.keychain.mac_key,
    )
    with pytest.raises(QueryReplayError):
        victim.execute("SELECT 1")
    assert victim.responses_lost == 0


# ----------------------------------------------------------------------
# end to end through the service, driven by the fault plane
# ----------------------------------------------------------------------
def test_service_response_lost_end_to_end():
    schedule = ChaosSchedule(
        seed=5, rates={sites.SERVICE_RESPONSE_LOST: 1.0}, limit_per_site=1
    )
    with scoped_registry(MetricsRegistry()) as registry, scoped_fault_plane(
        ChaosPlane(schedule, registry=registry)
    ):
        db = build_db()
        service = QueryService(db, ServiceConfig(max_workers=2), registry=registry)
        client = service.connect(service.register_tenant("acme"))
        with pytest.raises(ResponseLost):
            client.execute("SELECT v FROM t WHERE k = 1")
        # typed, counted, on both sides of the wire
        assert registry.counter("client.responses_lost").value == 1
        assert registry.counter("service.responses_lost").value == 1
        assert registry.counter("portal.replays_rejected").value == 1
        # exactly-once: the query executed once despite the retry
        assert db.portal.seen_query_count() == 1
        # recovery under a fresh qid; audit state is sound
        result = client.execute("SELECT v FROM t WHERE k = 1")
        assert result.rows == ((100,),)
        assert client.queries_verified == 1
        assert service.close()


def test_service_dispatch_abort_retries_same_qid_safely():
    """A pre-dispatch front-end failure leaves the qid unburned."""
    schedule = ChaosSchedule(
        seed=5, rates={sites.SERVICE_DISPATCH_ABORT: 1.0}, limit_per_site=1
    )
    with scoped_registry(MetricsRegistry()) as registry, scoped_fault_plane(
        ChaosPlane(schedule, registry=registry)
    ):
        db = build_db()
        service = QueryService(db, ServiceConfig(max_workers=2), registry=registry)
        client = service.connect(service.register_tenant("acme"))
        # the client's retry policy resubmits the same authenticated
        # query; the portal accepts it as the qid's first execution
        result = client.execute("SELECT v FROM t WHERE k = 2")
        assert result.rows == ((200,),)
        assert registry.counter("client.submit_retries").value == 1
        assert registry.counter("portal.replays_rejected").value == 0
        assert registry.counter("client.responses_lost").value == 0
        assert service.close()


def test_lost_response_not_raised_when_retry_succeeds():
    """An ordinary transient fault before the portal stays recoverable."""
    db = build_db()
    direct = lambda query: db.enclave.ecall("submit_query", query)
    failures = [TransientFault("flaky network")]

    def flaky(query):
        if failures:
            raise failures.pop()
        return direct(query)

    from repro.core.client import VeriDBClient

    client = VeriDBClient(flaky, db.enclave.keychain.mac_key)
    assert client.execute("SELECT v FROM t WHERE k = 1").rows == ((100,),)
    assert client.responses_lost == 0


def test_response_lost_is_not_an_authentication_error():
    # the typed recovery path must be distinguishable by exception class
    assert not issubclass(ResponseLost, AuthenticationError)
    assert issubclass(QueryReplayError, AuthenticationError)


# ----------------------------------------------------------------------
# service restart: kill mid-flight, recover from the log, serve again
# ----------------------------------------------------------------------
def test_service_restart_recovers_durable_state_from_wal(tmp_path):
    """The full outage story. A WAL-backed service loses a response
    mid-flight (the qid is burned, the client holds ResponseLost), then
    the whole process dies without draining. Recovery rebuilds the
    instance from the log: every endorsed write — including the one
    whose response was lost, because the portal commits the log *before*
    endorsing — is served by the restarted service, and the client's
    exported audit state carries over with no rollback false positive.
    """
    from repro.core.recovery import recover_from_wal

    cfg = VeriDBConfig(
        key_seed=23, wal_dir=str(tmp_path / "wal"), wal_group_commit=1
    )
    schedule = ChaosSchedule(
        seed=9, rates={sites.SERVICE_RESPONSE_LOST: 1.0}, limit_per_site=1
    )
    with scoped_fault_plane(ChaosPlane(schedule)):
        db = VeriDB(cfg)
        db.sql("CREATE TABLE t (k INTEGER PRIMARY KEY, v INTEGER)")
        db.sql("INSERT INTO t VALUES (1, 100)")
        service = QueryService(db, ServiceConfig(max_workers=2))
        creds = service.register_tenant("acme", api_key="k-acme")
        client = service.connect(creds)
        # mid-flight: the write executes and commits to the log, the
        # endorsed response dies on the way back, the qid stays burned
        with pytest.raises(ResponseLost) as lost:
            client.execute("INSERT INTO t VALUES (2, 200)")
        assert lost.value.sql == "INSERT INTO t VALUES (2, 200)"
        # traffic continues until the crash
        client.execute("INSERT INTO t VALUES (3, 300)")
        audit = client.export_audit_state()
        # the process dies here: no drain, no close, no flush beyond
        # what group commit already made durable

    recovered = recover_from_wal(str(tmp_path / "wal"), cfg)
    restarted = QueryService(recovered, ServiceConfig(max_workers=2))
    # same tenant id + seeded keychain → the same tenant MAC key, so the
    # client's persisted credentials and audit log remain valid
    creds2 = restarted.register_tenant("acme", api_key="k-acme")
    assert creds2.mac_key == creds.mac_key
    client2 = restarted.connect(creds2, audit_state=audit)

    # the lost-response write survived the crash: commit-before-endorse
    result = client2.execute("SELECT k, v FROM t ORDER BY k")
    assert result.rows == ((1, 100), (2, 200), (3, 300))
    # fresh qids, sequence numbers past the recovery counter leap — the
    # restored audit state raises no rollback alarm
    assert client2.execute("SELECT v FROM t WHERE k = 3").rows == ((300,),)
    # 2 post-restart queries + the pre-crash response the audit state
    # carried over: the restored log is one continuous history
    assert client2.queries_verified == 3
    assert client2.responses_lost == 0
    # and new writes keep flowing through the recovered log
    client2.execute("INSERT INTO t VALUES (4, 400)")
    assert restarted.close()


def test_drain_flushes_the_wal(tmp_path):
    """A clean shutdown leaves nothing buffered: drain commits the log
    after the last in-flight query finishes."""
    cfg = VeriDBConfig(
        key_seed=23, wal_dir=str(tmp_path / "wal"), wal_group_commit=64
    )
    db = VeriDB(cfg)
    db.sql("CREATE TABLE t (k INTEGER PRIMARY KEY, v INTEGER)")
    db.sql("INSERT INTO t VALUES (1, 100)")  # buffered (batch of 64)
    service = QueryService(db, ServiceConfig(max_workers=2))
    assert db.wal.pending_records > 0
    assert service.close()
    assert db.wal.pending_records == 0

    from repro.core.recovery import recover_from_wal

    recovered = recover_from_wal(str(tmp_path / "wal"), cfg)
    assert recovered.sql("SELECT v FROM t").rows == [(100,)]
