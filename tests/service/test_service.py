"""The service front-end: auth, admission, quotas, drain, observability."""

import threading

import pytest

from repro.core.config import VeriDBConfig
from repro.core.database import VeriDB
from repro.core.portal import AuthenticatedQuery
from repro.crypto.mac import MessageAuthenticator
from repro.errors import (
    AuthenticationError,
    ServiceDraining,
    ServiceOverloaded,
    TenantQuotaExceeded,
    TenantRateLimited,
    UnknownTenant,
)
from repro.obs import MetricsRegistry, scoped_event_sink, scoped_registry
from repro.service import QueryService, ServiceConfig, TenantQuota


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


def build_db(seed=11):
    db = VeriDB(VeriDBConfig(key_seed=seed))
    db.sql("CREATE TABLE kv (k INTEGER PRIMARY KEY, v INTEGER)")
    for i in range(10):
        db.sql(f"INSERT INTO kv VALUES ({i}, {i * 10})")
    return db


@pytest.fixture
def registry():
    with scoped_registry(MetricsRegistry()) as reg:
        yield reg


@pytest.fixture
def service(registry):
    svc = QueryService(build_db(), ServiceConfig(max_workers=4), registry=registry)
    yield svc
    svc.close()


# ----------------------------------------------------------------------
# the happy path
# ----------------------------------------------------------------------
def test_tenant_client_round_trip(service):
    client = service.connect(service.register_tenant("acme"))
    result = client.execute("SELECT v FROM kv WHERE k = 3")
    assert result.rows == ((30,),)
    assert result.verified
    assert service.tenant("acme").in_flight == 0


def test_two_tenants_are_isolated_clients(service):
    a = service.connect(service.register_tenant("acme"))
    b = service.connect(service.register_tenant("globex"))
    assert a.execute("SELECT COUNT(*) FROM kv").rows == ((10,),)
    assert b.execute("SELECT COUNT(*) FROM kv").rows == ((10,),)
    # both audits advanced independently
    assert a.queries_verified == 1 and b.queries_verified == 1


def test_per_tenant_counters_and_stats(service, registry):
    creds = service.register_tenant("acme")
    client = service.connect(creds)
    for _ in range(3):
        client.execute("SELECT COUNT(*) FROM kv")
    assert registry.counter("service.tenant.acme.queries").value == 3
    stats = service.stats()
    assert stats["tenants"] == ["acme"]
    assert stats["completed"] == 3
    assert stats["in_flight"] == 0


# ----------------------------------------------------------------------
# authentication layers
# ----------------------------------------------------------------------
def test_unknown_api_key_typed_rejection(service, registry):
    query = AuthenticatedQuery(qid=b"q" * 16, sql="SELECT 1", mac=b"m" * 32)
    with pytest.raises(UnknownTenant):
        service.submit("not-a-key", query)
    assert registry.counter("service.auth_failures").value == 1


def test_cross_tenant_mac_forgery_rejected(service):
    """Tenant A's MAC key must not authenticate queries as tenant B."""
    a = service.register_tenant("acme")
    b = service.register_tenant("globex")
    sql = "SELECT COUNT(*) FROM kv"
    qid = b"x" * 16
    mac_under_a = MessageAuthenticator(a.mac_key).tag(qid, sql.encode())
    forged = AuthenticatedQuery(
        qid=qid, sql=sql, mac=mac_under_a, tenant="globex"
    )
    # the untrusted front-end routes it (B's api key), but the enclave
    # checks the MAC under B's key and refuses
    with pytest.raises(AuthenticationError):
        service.submit(b.api_key, forged)


def test_unregistered_tenant_name_rejected_by_portal(service):
    creds = service.register_tenant("acme")
    sql = "SELECT 1"
    qid = b"y" * 16
    mac = MessageAuthenticator(creds.mac_key).tag(qid, sql.encode())
    ghost = AuthenticatedQuery(qid=qid, sql=sql, mac=mac, tenant="nobody")
    with pytest.raises(AuthenticationError):
        service.submit(creds.api_key, ghost)


def test_duplicate_tenant_registration_rejected(service):
    service.register_tenant("acme")
    with pytest.raises(AuthenticationError):
        service.db.portal.register_tenant_key("acme", b"z" * 32)
    # the portal refuses first: the attested key is not replaceable
    with pytest.raises(AuthenticationError):
        service.register_tenant("acme", api_key="another")


# ----------------------------------------------------------------------
# admission control and backpressure
# ----------------------------------------------------------------------
def _gate_runs(service):
    """Block every worker in _run until the returned event is set."""
    release = threading.Event()
    original = service._run

    def gated(tenant, query, admitted_at):
        release.wait(timeout=10)
        return original(tenant, query, admitted_at)

    service._run = gated
    return release


def _query_for(service, creds, sql="SELECT COUNT(*) FROM kv", qid=None):
    qid = qid if qid is not None else b"a" * 16
    mac = MessageAuthenticator(creds.mac_key).tag(qid, sql.encode())
    return AuthenticatedQuery(qid=qid, sql=sql, mac=mac, tenant=creds.tenant_id)


def test_global_admission_rejects_typed(registry):
    svc = QueryService(
        build_db(),
        ServiceConfig(max_in_flight=1, max_workers=1),
        registry=registry,
    )
    creds = svc.register_tenant("acme")
    release = _gate_runs(svc)
    first = svc.submit_async(creds.api_key, _query_for(svc, creds, qid=b"1" * 16))
    with pytest.raises(ServiceOverloaded):
        svc.submit(creds.api_key, _query_for(svc, creds, qid=b"2" * 16))
    assert registry.counter("service.rejected_overload").value == 1
    release.set()
    assert first.result(timeout=10).rowcount == 1
    assert svc.close()


def test_tenant_quota_rejects_typed(registry):
    svc = QueryService(
        build_db(),
        ServiceConfig(max_in_flight=16, max_workers=4),
        registry=registry,
    )
    creds = svc.register_tenant("acme", quota=TenantQuota(max_in_flight=1))
    release = _gate_runs(svc)
    first = svc.submit_async(creds.api_key, _query_for(svc, creds, qid=b"1" * 16))
    with pytest.raises(TenantQuotaExceeded):
        svc.submit(creds.api_key, _query_for(svc, creds, qid=b"2" * 16))
    assert registry.counter("service.rejected_quota").value == 1
    assert svc.tenant("acme").rejected == 1
    release.set()
    first.result(timeout=10)
    assert svc.close()


def test_rate_limit_rejects_and_refills(registry):
    clock = FakeClock()
    svc = QueryService(
        build_db(), ServiceConfig(max_workers=2), registry=registry, clock=clock
    )
    creds = svc.register_tenant(
        "acme", quota=TenantQuota(rate_per_second=1.0, burst=2)
    )
    client = svc.connect(creds)
    client.execute("SELECT COUNT(*) FROM kv")
    client.execute("SELECT COUNT(*) FROM kv")
    with pytest.raises(TenantRateLimited):
        client.execute("SELECT COUNT(*) FROM kv")
    assert registry.counter("service.rejected_rate_limited").value == 1
    clock.advance(1.0)
    assert client.execute("SELECT COUNT(*) FROM kv").rowcount == 1
    assert svc.close()


# ----------------------------------------------------------------------
# graceful drain
# ----------------------------------------------------------------------
def test_drain_waits_for_in_flight_then_rejects_new(registry):
    svc = QueryService(build_db(), ServiceConfig(max_workers=2), registry=registry)
    creds = svc.register_tenant("acme")
    release = _gate_runs(svc)
    inflight = svc.submit_async(creds.api_key, _query_for(svc, creds, qid=b"1" * 16))

    drained = []
    drainer = threading.Thread(target=lambda: drained.append(svc.drain()))
    drainer.start()
    # wait for the drain flag, then prove new work is refused while the
    # admitted query still runs to completion
    for _ in range(100):
        if svc.draining:
            break
        threading.Event().wait(0.01)
    assert svc.draining
    with pytest.raises(ServiceDraining):
        svc.submit(creds.api_key, _query_for(svc, creds, qid=b"2" * 16))
    release.set()
    drainer.join(timeout=10)
    assert drained == [True]
    assert inflight.result(timeout=10).rowcount == 1
    assert registry.counter("service.rejected_draining").value == 1
    svc.close()


def test_close_is_idempotent(service):
    assert service.close()
    assert service.close()


# ----------------------------------------------------------------------
# observability
# ----------------------------------------------------------------------
def test_admit_and_reject_events_emitted(registry):
    with scoped_event_sink() as sink:
        svc = QueryService(build_db(), ServiceConfig(max_workers=2), registry=registry)
        creds = svc.register_tenant(
            "acme", quota=TenantQuota(rate_per_second=0.001, burst=1)
        )
        client = svc.connect(creds)
        client.execute("SELECT COUNT(*) FROM kv")
        with pytest.raises(TenantRateLimited):
            client.execute("SELECT COUNT(*) FROM kv")
        svc.drain()
        admits = sink.events_of("service_admit")
        rejects = sink.events_of("service_reject")
        drains = sink.events_of("service_drain")
        assert len(admits) == 1 and admits[0]["tenant"] == "acme"
        assert len(rejects) == 1 and rejects[0]["reason"] == "rate_limited"
        assert len(drains) == 1
        svc.close()


def test_latency_histograms_populated(service, registry):
    client = service.connect(service.register_tenant("acme"))
    for _ in range(5):
        client.execute("SELECT COUNT(*) FROM kv")
    snap = registry.snapshot()
    assert snap["service.latency_seconds"]["count"] == 5
    assert snap["service.queue_seconds"]["count"] == 5
    assert snap["service.execute_seconds"]["count"] == 5
    assert snap["service.in_flight"]["value"] == 0
    assert snap["service.tenants"]["value"] == 1
