"""Cross-tenant plan-cache sharing is observable (sql.plan_cache_cross_tenant_hits).

The plan cache is keyed by statement shape, not tenant — tenant A's
compiled plan serves tenant B's identical query. That sharing is
correct (plans hold no tenant data) but *observable*: the
``sql.plan_cache_cross_tenant_hits`` counter makes the shape-privacy
trade-off auditable instead of silent.
"""

import pytest

from repro.core.config import VeriDBConfig
from repro.core.database import VeriDB
from repro.obs import MetricsRegistry, scoped_registry
from repro.service import QueryService, ServiceConfig


@pytest.fixture
def registry():
    with scoped_registry(MetricsRegistry()) as reg:
        yield reg


@pytest.fixture
def service(registry):
    db = VeriDB(VeriDBConfig(key_seed=3))
    db.sql("CREATE TABLE kv (k INTEGER PRIMARY KEY, v INTEGER)")
    for i in range(8):
        db.sql(f"INSERT INTO kv VALUES ({i}, {i * 10})")
    svc = QueryService(db, ServiceConfig(max_workers=2), registry=registry)
    yield svc
    svc.close()


def cross_hits(registry):
    return registry.counter("sql.plan_cache_cross_tenant_hits").value


def test_second_tenant_hit_is_counted(service, registry):
    acme = service.connect(service.register_tenant("acme"))
    globex = service.connect(service.register_tenant("globex"))
    sql = "SELECT v FROM kv WHERE k = ?"

    acme.execute(sql, params=(1,))  # cold: builds and owns the entry
    assert cross_hits(registry) == 0

    acme.execute(sql, params=(2,))  # same tenant: a plain hit
    assert cross_hits(registry) == 0

    result = globex.execute(sql, params=(3,))  # other tenant: shared hit
    assert result.rows == ((30,),)
    assert cross_hits(registry) == 1

    globex.execute(sql, params=(4,))  # still tenant-crossed: entry is acme's
    assert cross_hits(registry) == 2


def test_distinct_shapes_never_cross(service, registry):
    acme = service.connect(service.register_tenant("acme"))
    globex = service.connect(service.register_tenant("globex"))
    acme.execute("SELECT v FROM kv WHERE k = 1")
    globex.execute("SELECT COUNT(*) FROM kv")
    assert cross_hits(registry) == 0


def test_admin_path_without_tenant_does_not_count(service, registry):
    acme = service.connect(service.register_tenant("acme"))
    acme.execute("SELECT v FROM kv WHERE k = 0")
    # the admin/benchmark path has no tenant identity; sharing with it
    # is not cross-*tenant* sharing
    service.db.sql("SELECT v FROM kv WHERE k = 0")
    assert cross_hits(registry) == 0


def test_results_are_correct_across_the_shared_entry(service, registry):
    tenants = [
        service.connect(service.register_tenant(f"t{i}")) for i in range(3)
    ]
    for i, client in enumerate(tenants):
        result = client.execute("SELECT v FROM kv WHERE k = ?", params=(i,))
        assert result.rows == ((i * 10,),)
        assert result.verified
    assert cross_hits(registry) == 2  # tenants 1 and 2 rode t0's plan
