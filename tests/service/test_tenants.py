"""Token bucket, tenant sessions and the API-key directory."""

import pytest

from repro.errors import ConfigurationError, UnknownTenant
from repro.service.config import ServiceConfig, TenantQuota
from repro.service.tenants import (
    TenantCredentials,
    TenantDirectory,
    TenantSession,
    TokenBucket,
)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


# ----------------------------------------------------------------------
# token bucket
# ----------------------------------------------------------------------
def test_bucket_starts_full_and_drains():
    clock = FakeClock()
    bucket = TokenBucket(rate_per_second=10, burst=3, clock=clock)
    assert [bucket.try_acquire() for _ in range(4)] == [
        True, True, True, False,
    ]


def test_bucket_refills_at_rate():
    clock = FakeClock()
    bucket = TokenBucket(rate_per_second=10, burst=2, clock=clock)
    bucket.try_acquire(), bucket.try_acquire()
    assert not bucket.try_acquire()
    clock.advance(0.1)  # exactly one token at 10/s
    assert bucket.try_acquire()
    assert not bucket.try_acquire()


def test_bucket_never_exceeds_burst():
    clock = FakeClock()
    bucket = TokenBucket(rate_per_second=10, burst=2, clock=clock)
    clock.advance(100.0)  # a long idle period must not bank 1000 tokens
    grants = sum(bucket.try_acquire() for _ in range(10))
    assert grants == 2


def test_unlimited_bucket_always_grants():
    bucket = TokenBucket(rate_per_second=None, burst=1)
    assert all(bucket.try_acquire() for _ in range(100))


# ----------------------------------------------------------------------
# quotas and sessions
# ----------------------------------------------------------------------
def _session(quota=None, clock=None):
    return TenantSession(
        TenantCredentials("acme", "key-acme", b"k" * 32),
        quota or TenantQuota(),
        clock=clock or FakeClock(),
    )


def test_tenant_in_flight_quota():
    session = _session(TenantQuota(max_in_flight=2))
    assert session.try_admit() and session.try_admit()
    assert not session.try_admit()
    session.release()
    assert session.try_admit()


def test_quota_validation():
    with pytest.raises(ConfigurationError):
        TenantQuota(max_in_flight=0)
    with pytest.raises(ConfigurationError):
        TenantQuota(rate_per_second=0)
    with pytest.raises(ConfigurationError):
        TenantQuota(burst=0)
    with pytest.raises(ConfigurationError):
        ServiceConfig(max_in_flight=0)
    with pytest.raises(ConfigurationError):
        ServiceConfig(max_workers=0)
    with pytest.raises(ConfigurationError):
        ServiceConfig(drain_timeout=-1)


# ----------------------------------------------------------------------
# directory
# ----------------------------------------------------------------------
def test_directory_lookup_by_api_key():
    directory = TenantDirectory()
    session = _session()
    directory.register(session)
    assert directory.lookup("key-acme") is session
    assert directory.by_id("acme") is session
    assert len(directory) == 1
    assert directory.tenant_ids() == ["acme"]


def test_directory_unknown_key_raises_typed():
    directory = TenantDirectory()
    with pytest.raises(UnknownTenant):
        directory.lookup("nope")
    with pytest.raises(UnknownTenant):
        directory.by_id("nope")


def test_directory_rejects_duplicate_registration():
    directory = TenantDirectory()
    directory.register(_session())
    with pytest.raises(ValueError):
        directory.register(_session())
