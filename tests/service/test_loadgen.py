"""The open-loop load generator: scheduling, taxonomy, reporting."""

import pytest

from repro.core.config import VeriDBConfig
from repro.core.database import VeriDB
from repro.obs import MetricsRegistry, scoped_registry
from repro.service import (
    LoadGenerator,
    QueryService,
    ServiceConfig,
    print_sweep_table,
)
from repro.service.loadgen import CLIENT_LATENCY_METRIC


def build_db(seed=31):
    db = VeriDB(VeriDBConfig(key_seed=seed))
    db.sql("CREATE TABLE kv (k INTEGER PRIMARY KEY, v INTEGER)")
    for i in range(20):
        db.sql(f"INSERT INTO kv VALUES ({i}, {i})")
    return db


@pytest.fixture
def registry():
    with scoped_registry(MetricsRegistry()) as reg:
        yield reg


def test_small_run_all_complete(registry):
    with QueryService(
        build_db(), ServiceConfig(max_in_flight=64, max_workers=4),
        registry=registry,
    ) as svc:
        gen = LoadGenerator(svc, n_clients=8, registry=registry)
        report = gen.run("SELECT COUNT(*) FROM kv", target_qps=200, total_ops=40)
    assert report.offered == 40
    assert report.completed == 40
    assert report.rejected == 0
    assert report.protocol_errors == 0
    assert report.other_errors == 0
    assert report.error_samples == []
    assert report.duration_s > 0
    assert report.achieved_qps > 0
    # percentiles come from the shared log2 histogram
    assert registry.histogram(CLIENT_LATENCY_METRIC).count == 40
    assert report.p50_ms > 0
    assert report.p99_ms >= report.p95_ms >= report.p50_ms


def test_sql_for_callable_varies_queries(registry):
    with QueryService(build_db(), registry=registry) as svc:
        gen = LoadGenerator(svc, n_clients=4, registry=registry)
        report = gen.run(
            lambda op: f"SELECT v FROM kv WHERE k = {op % 20}",
            target_qps=500,
            total_ops=20,
        )
    assert report.completed == 20


def test_overload_counts_as_rejection_not_error(registry):
    """Over-offering a tiny quota produces typed rejections, zero errors."""
    svc = QueryService(
        build_db(), ServiceConfig(max_in_flight=64, max_workers=4),
        registry=registry,
    )
    gen = LoadGenerator(svc, n_clients=8, tenants=1, registry=registry)
    # throttle the single tenant after the fact: 1 op/s with burst 2
    from repro.service.tenants import TokenBucket

    svc.tenant("load-tenant-0").bucket = TokenBucket(rate_per_second=1.0, burst=2)
    report = gen.run("SELECT COUNT(*) FROM kv", target_qps=1000, total_ops=30)
    svc.close()
    assert report.completed >= 2
    assert report.rejected >= 1
    assert report.completed + report.rejected == 30
    assert report.protocol_errors == 0


def test_report_dict_shape(registry):
    with QueryService(build_db(), registry=registry) as svc:
        gen = LoadGenerator(svc, n_clients=2, registry=registry)
        report = gen.run("SELECT COUNT(*) FROM kv", target_qps=300, total_ops=6)
    payload = report.to_dict()
    assert payload["completed"] == 6
    assert set(payload["latency_ms"]) == {"p50", "p95", "p99", "mean"}
    assert payload["achieved_qps"] == pytest.approx(
        6 / payload["duration_s"]
    )


def test_saturation_sweep_resets_histogram_per_point(registry, capsys):
    with QueryService(build_db(), registry=registry) as svc:
        gen = LoadGenerator(svc, n_clients=4, registry=registry)
        reports = gen.saturation_sweep(
            "SELECT COUNT(*) FROM kv", qps_targets=[100, 200], ops_per_target=10
        )
        # histogram was reset between points: only the last run's samples
        assert registry.histogram(CLIENT_LATENCY_METRIC).count == 10
    assert [r.target_qps for r in reports] == [100, 200]
    assert all(r.completed == 10 for r in reports)
    print_sweep_table(reports)
    out = capsys.readouterr().out
    assert "target qps" in out and "p99 ms" in out


def test_clients_spread_over_tenants(registry):
    with QueryService(build_db(), registry=registry) as svc:
        gen = LoadGenerator(svc, n_clients=6, tenants=3, registry=registry)
        assert [c.tenant_id for c in gen.credentials] == [
            "load-tenant-0", "load-tenant-1", "load-tenant-2",
        ]
        gen.run("SELECT COUNT(*) FROM kv", target_qps=600, total_ops=12)
        for i in range(3):
            assert (
                registry.counter(f"service.tenant.load-tenant-{i}.queries").value
                == 4
            )
