"""TPC-H generator and query tests (small scale)."""

import datetime

import pytest

from repro.core.config import VeriDBConfig
from repro.core.database import VeriDB
from repro.workloads.tpch import (
    QUERIES,
    QUERY_1,
    QUERY_6,
    QUERY_19,
    TPCHGenerator,
    load_tpch,
)

SF = 0.0002  # 1200 lineitems, 40 parts — enough for plan coverage


@pytest.fixture(scope="module")
def db():
    database = VeriDB(VeriDBConfig(key_seed=20))
    counts = load_tpch(database, scale_factor=SF, seed=1)
    assert counts["lineitem"] == int(6_000_000 * SF)
    assert counts["part"] == int(200_000 * SF)
    return database


def test_generator_deterministic():
    a = list(TPCHGenerator(0.0001, seed=2).lineitems())
    b = list(TPCHGenerator(0.0001, seed=2).lineitems())
    assert a == b


def test_generator_value_domains():
    for row in TPCHGenerator(0.0001, seed=3).lineitems():
        assert 1 <= row[5] <= 50  # quantity
        assert 0.0 <= row[7] <= 0.10  # discount
        assert row[9] in ("R", "A", "N")
        assert row[10] in ("O", "F")
        assert isinstance(row[11], datetime.date)


def test_q1_matches_reference(db):
    """Q1 through the verified engine equals a plain-Python evaluation."""
    rows = list(TPCHGenerator(SF, seed=1).lineitems())
    cutoff = datetime.date(1998, 9, 2)
    expected: dict = {}
    for row in rows:
        if row[11] > cutoff:
            continue
        key = (row[9], row[10])
        acc = expected.setdefault(key, [0.0, 0.0, 0.0, 0.0, 0])
        qty, price, disc, tax = row[5], row[6], row[7], row[8]
        acc[0] += qty
        acc[1] += price
        acc[2] += price * (1 - disc)
        acc[3] += price * (1 - disc) * (1 + tax)
        acc[4] += 1
    result = db.sql(QUERY_1)
    assert len(result.rows) == len(expected)
    for row in result.rows:
        key = (row[0], row[1])
        acc = expected[key]
        assert row[2] == pytest.approx(acc[0])
        assert row[3] == pytest.approx(acc[1])
        assert row[4] == pytest.approx(acc[2])
        assert row[5] == pytest.approx(acc[3])
        assert row[9] == acc[4]
    # ordered by the group keys
    assert [(r[0], r[1]) for r in result.rows] == sorted(expected)


def test_q1_uses_range_scan(db):
    assert "RangeScan" in db.sql(QUERY_1).explain()


def test_q6_matches_reference(db):
    rows = list(TPCHGenerator(SF, seed=1).lineitems())
    expected = sum(
        row[6] * row[7]
        for row in rows
        if datetime.date(1994, 1, 1) <= row[11] < datetime.date(1995, 1, 1)
        and 0.05 <= row[7] <= 0.07
        and row[5] < 24
    )
    result = db.sql(QUERY_6)
    value = result.rows[0][0]
    if expected == 0:
        assert value is None or value == 0
    else:
        assert value == pytest.approx(expected)


def test_q19_plans_agree(db):
    merge = db.sql(QUERY_19, join_hint="merge").rows[0][0]
    nested = db.sql(QUERY_19, join_hint="nested_loop").rows[0][0]
    assert merge == nested or merge == pytest.approx(nested)


def test_q19_matches_reference(db):
    lineitems = list(TPCHGenerator(SF, seed=1).lineitems())
    parts = {p[0]: p for p in TPCHGenerator(SF, seed=1).parts()}
    sm = ("SM CASE", "SM BOX", "SM PACK", "SM PKG")
    med = ("MED BAG", "MED BOX", "MED PKG", "MED PACK")
    lg = ("LG CASE", "LG BOX", "LG PACK", "LG PKG")
    expected = 0.0
    matched = False
    for row in lineitems:
        part = parts[row[2]]
        if row[14] != "DELIVER IN PERSON" or row[15] not in ("AIR", "AIR REG"):
            continue
        qty, size = row[5], part[5]
        ok = (
            (part[3] == "Brand#12" and part[6] in sm and 1 <= qty <= 11 and 1 <= size <= 5)
            or (part[3] == "Brand#23" and part[6] in med and 10 <= qty <= 20 and 1 <= size <= 10)
            or (part[3] == "Brand#34" and part[6] in lg and 20 <= qty <= 30 and 1 <= size <= 15)
        )
        if ok:
            expected += row[6] * (1 - row[7])
            matched = True
    result = db.sql(QUERY_19, join_hint="merge")
    value = result.rows[0][0]
    if matched:
        assert value == pytest.approx(expected)
    else:
        assert value is None or value == 0


def test_queries_registry():
    assert set(QUERIES) == {"Q1", "Q6", "Q19"}


def test_verification_after_analytics(db):
    db.sql(QUERY_6)
    db.verify_now()
