"""TPC-C population and transaction tests (small scale)."""

import random

import pytest

from repro.core.config import VeriDBConfig
from repro.core.database import VeriDB
from repro.workloads.tpcc import TPCCBench, customer_pk, district_pk, stock_pk


@pytest.fixture
def bench():
    db = VeriDB(VeriDBConfig(key_seed=30))
    b = TPCCBench(db, warehouses=2, districts=2, customers=5, items=20, seed=1)
    b.load()
    return b


def test_population_counts(bench):
    assert bench.tables["warehouse"].row_count == 2
    assert bench.tables["district"].row_count == 4
    assert bench.tables["customer"].row_count == 20
    assert bench.tables["item"].row_count == 20
    assert bench.tables["stock"].row_count == 40


def test_new_order_creates_rows(bench):
    rng = random.Random(0)
    bench.new_order(rng)
    assert bench.tables["orders"].row_count == 1
    assert bench.tables["new_order"].row_count == 1
    lines = bench.tables["order_line"].row_count
    assert 5 <= lines <= 15
    # the district order counter advanced
    advanced = [
        row
        for row in bench.tables["district"].seq_scan()
        if row[5] == 2
    ]
    assert len(advanced) == 1


def test_payment_moves_money(bench):
    rng = random.Random(1)
    bench.payment(rng)
    assert bench.tables["history"].row_count == 1
    warehouses = bench.tables["warehouse"].seq_scan()
    assert any(w[3] > 0 for w in warehouses)
    customers = bench.tables["customer"].seq_scan()
    assert any(c[5] < 0 for c in customers)


def test_delivery_clears_new_orders(bench):
    rng = random.Random(2)
    for _ in range(6):
        bench.new_order(rng)
    before = bench.tables["new_order"].row_count
    for w in range(1, bench.warehouses + 1):

        class _FixedW(random.Random):
            def randint(self, a, b, _w=w):
                return _w if (a, b) == (1, bench.warehouses) else super().randint(a, b)

        bench.delivery(_FixedW(3))
    after = bench.tables["new_order"].row_count
    assert after < before
    delivered = [
        o for o in bench.tables["orders"].seq_scan() if o[7] is not None
    ]
    assert delivered


def test_order_status_and_stock_level_run(bench):
    rng = random.Random(4)
    for _ in range(3):
        bench.new_order(rng)
    bench.order_status(rng)
    bench.stock_level(rng)  # must not raise


def test_mix_weights_sum_to_100():
    from repro.workloads.tpcc import TX_MIX

    assert sum(w for _, w in TX_MIX) == 100


def test_single_client_run_and_verify(bench):
    tps = bench.run_clients(n_clients=1, txns_per_client=20)
    assert tps > 0
    bench.db.verify_now()


def test_concurrent_clients_consistent(bench):
    tps = bench.run_clients(n_clients=4, txns_per_client=10)
    assert tps > 0
    bench.db.verify_now()  # storage integrity survived concurrency
    # order ids within each district are dense and unique
    for w in range(1, bench.warehouses + 1):
        for d in range(1, bench.districts + 1):
            d_pk = district_pk(w, d)
            row, _ = bench.tables["district"].get(d_pk)
            next_o = row[5]
            orders = [
                o
                for o in bench.tables["orders"].seq_scan()
                if o[1] == w and o[2] == d
            ]
            assert len(orders) == next_o - 1
            assert sorted(o[3] for o in orders) == list(range(1, next_o))


def test_pk_encoders_injective():
    seen = set()
    for w in range(1, 4):
        for d in range(1, 4):
            seen.add(district_pk(w, d))
            for c in range(1, 4):
                seen.add(customer_pk(w, d, c))
        for i in range(1, 4):
            seen.add(stock_pk(w, i))
    assert len(seen) == 3 * 3 + 3 * 3 * 3 + 3 * 3
