"""Unit tests for the micro workload generator and KV adapter."""

from repro.storage.engine import StorageEngine
from repro.workloads.micro import VALUE_BYTES, KVTable, MicroWorkload, load_kv
from repro.workloads.runner import LatencyRecorder, run_operations


def test_initial_pairs_shape():
    workload = MicroWorkload(n_initial=50, seed=1)
    pairs = list(workload.initial_pairs())
    assert len(pairs) == 50
    assert [k for k, _ in pairs] == list(range(1, 51))
    assert all(len(v) == VALUE_BYTES for _, v in pairs)


def test_deterministic_given_seed():
    a = list(MicroWorkload(10, seed=3).initial_pairs())
    b = list(MicroWorkload(10, seed=3).initial_pairs())
    assert a == b
    assert a != list(MicroWorkload(10, seed=4).initial_pairs())


def test_operation_stream_feasible():
    workload = MicroWorkload(n_initial=30, seed=2)
    initial = dict(workload.initial_pairs())
    ops = workload.operations(500)
    assert len(ops) == 500
    live = set(initial)
    for op in ops:
        if op.kind == "insert":
            assert op.key not in live
            live.add(op.key)
        elif op.kind == "delete":
            assert op.key in live
            live.remove(op.key)
        else:
            assert op.key in live


def test_operation_mix_roughly_balanced():
    ops = MicroWorkload(n_initial=1000, seed=5).operations(2000)
    counts = {}
    for op in ops:
        counts[op.kind] = counts.get(op.kind, 0) + 1
    for kind in ("get", "insert", "delete", "update"):
        assert counts[kind] > 2000 / 4 * 0.7


def test_kv_table_roundtrip():
    kv = KVTable(StorageEngine())
    workload = MicroWorkload(n_initial=20, seed=0)
    assert load_kv(kv, workload.initial_pairs()) == 20
    assert len(kv) == 20
    assert kv.get(5) is not None
    assert kv.get(999) is None
    assert kv.update(5, "x")
    assert kv.get(5) == "x"
    assert kv.delete(5)
    assert kv.get(5) is None


def test_run_operations_records_latency():
    engine = StorageEngine()
    kv = KVTable(engine)
    workload = MicroWorkload(n_initial=50, seed=1)
    load_kv(kv, workload.initial_pairs())
    recorder = run_operations(kv, workload.operations(200))
    report = recorder.report()
    assert set(report) == {"get", "insert", "delete", "update"}
    assert all(v > 0 for v in report.values())
    assert sum(recorder.count(k) for k in report) == 200
    engine.verify_now()  # replay left the store consistent


def test_latency_recorder_math():
    recorder = LatencyRecorder()
    recorder.record("get", 0.001)
    recorder.record("get", 0.003)
    assert recorder.mean_us("get") == 2000.0
    assert recorder.count("get") == 2
    assert recorder.mean_us("missing") == 0.0
